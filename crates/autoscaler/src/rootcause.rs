//! The auto root-causer.
//!
//! Untriaged problems (§V-D) are lag symptoms the scaler must not "fix"
//! with more resources. The paper enumerates their typical causes and
//! remedies — hardware issues (single-task anomaly; a move usually
//! resolves it), bad user updates (lag right after a release; more
//! resources or a rollback), dependency failures and system bugs (nothing
//! the scaler can do) — and names an *auto root-causer* as the kind of
//! service the decoupled architecture was built to accept (§I, §IX).
//! This module is that service: a rule-based classifier over the same
//! job metrics the scaler sees, producing a diagnosis and a safe
//! mitigation.

use crate::symptoms::JobMetrics;
use turbine_types::{Duration, SimTime, TaskId};

/// A classified root cause for an untriaged lag.
#[derive(Debug, Clone, PartialEq)]
pub enum RootCause {
    /// One task is anomalously slow while its siblings are healthy —
    /// typically a bad host. Moving the task usually resolves it.
    HardwareIssue {
        /// The anomalous task.
        task: TaskId,
    },
    /// The lag began right after a package release: likely a bad user
    /// update.
    BadUserUpdate {
        /// The version whose rollout coincided with the lag.
        suspect_version: u64,
        /// The version to roll back to.
        previous_version: u64,
    },
    /// Processing collapsed across *all* tasks with no recent change:
    /// a dependency failure or system bug. Scaling would amplify load on
    /// the struggling dependency.
    DependencyFailure,
    /// No rule matched; a human must look.
    Unknown,
}

impl RootCause {
    /// Stable snake_case label (trace records, alert routing).
    pub fn label(&self) -> &'static str {
        match self {
            RootCause::HardwareIssue { .. } => "hardware_issue",
            RootCause::BadUserUpdate { .. } => "bad_user_update",
            RootCause::DependencyFailure => "dependency_failure",
            RootCause::Unknown => "unknown",
        }
    }
}

/// The safe mitigation for a diagnosis.
#[derive(Debug, Clone, PartialEq)]
pub enum Mitigation {
    /// Move the task to another host (automated; low risk).
    MoveTask(TaskId),
    /// Recommend rolling back to the given version (operator action —
    /// automation must not revert user intent on its own).
    RecommendRollback(u64),
    /// Alert and wait; adding resources would not help.
    AlertAndWait,
}

impl Mitigation {
    /// Short stable description (trace records, runbooks).
    pub fn describe(&self) -> String {
        match self {
            Mitigation::MoveTask(task) => format!("move_task({task})"),
            Mitigation::RecommendRollback(v) => format!("recommend_rollback(v{v})"),
            Mitigation::AlertAndWait => "alert_and_wait".to_string(),
        }
    }
}

/// Root-causer thresholds.
#[derive(Debug, Clone, Copy)]
pub struct RootCauserConfig {
    /// A task counts as anomalous when its rate is below this fraction of
    /// the median sibling rate.
    pub anomaly_ratio: f64,
    /// A release within this window before the lag began is a suspect.
    pub update_window: Duration,
    /// Fleet-wide collapse: observed per-thread throughput below this
    /// fraction of the expected `P`.
    pub collapse_ratio: f64,
}

impl Default for RootCauserConfig {
    fn default() -> Self {
        RootCauserConfig {
            anomaly_ratio: 0.2,
            update_window: Duration::from_mins(30),
            collapse_ratio: 0.5,
        }
    }
}

/// Everything the root-causer looks at for one diagnosis.
#[derive(Debug, Clone)]
pub struct DiagnosisInput<'a> {
    /// The job's metrics this round.
    pub metrics: &'a JobMetrics,
    /// Per-task processing rates (bytes/sec), aligned with task ids.
    pub per_task_rates: &'a [(TaskId, f64)],
    /// The scaler's current per-thread max-throughput estimate `P`.
    pub expected_per_thread: f64,
    /// Current package version and when it last changed (if known).
    pub last_release: Option<(u64, u64, SimTime)>,
    /// When the ongoing lag episode began (if known).
    pub lag_since: Option<SimTime>,
    /// Now.
    pub now: SimTime,
}

/// A diagnosis: cause, mitigation, human-readable rationale.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnosis {
    /// The classified cause.
    pub cause: RootCause,
    /// The recommended (or automated) mitigation.
    pub mitigation: Mitigation,
    /// One-line rationale for the runbook.
    pub rationale: String,
}

/// The root-causer service.
#[derive(Debug, Default)]
pub struct RootCauser {
    config: RootCauserConfig,
}

impl RootCauser {
    /// A root-causer with the given thresholds.
    pub fn new(config: RootCauserConfig) -> Self {
        RootCauser { config }
    }

    /// Rule 1 in isolation — exposed so the platform can check for a
    /// hardware anomaly on *every* lagging job (the paper's root-causer is
    /// an independent service watching symptoms, not a fallback of the
    /// scaler): exactly one task far below the median of its siblings,
    /// with the siblings healthy. A single dead task itself raises the
    /// rate CV somewhat, so the gate is generous (0.8); truly imbalanced
    /// *input* (one task receiving most of the data) produces a much
    /// higher CV and stays the scaler's RebalanceInput territory.
    pub fn hardware_anomaly(
        &self,
        metrics: &JobMetrics,
        per_task_rates: &[(TaskId, f64)],
    ) -> Option<TaskId> {
        if per_task_rates.len() < 3 || metrics.imbalance_cv() >= 0.8 {
            return None;
        }
        let mut rates: Vec<f64> = per_task_rates.iter().map(|&(_, r)| r).collect();
        rates.sort_by(|a, b| a.partial_cmp(b).expect("rates are not NaN"));
        let median = rates[rates.len() / 2];
        if median <= 0.0 {
            return None;
        }
        let anomalous: Vec<TaskId> = per_task_rates
            .iter()
            .filter(|&&(_, r)| r < median * self.config.anomaly_ratio)
            .map(|&(t, _)| t)
            .collect();
        (anomalous.len() == 1).then(|| anomalous[0])
    }

    /// Classify one untriaged lag.
    pub fn diagnose(&self, input: &DiagnosisInput<'_>) -> Diagnosis {
        // Rule 1 — hardware issue.
        if let Some(task) = self.hardware_anomaly(input.metrics, input.per_task_rates) {
            return Diagnosis {
                cause: RootCause::HardwareIssue { task },
                mitigation: Mitigation::MoveTask(task),
                rationale: format!(
                    "{task} processes <{:.0}% of the sibling median with balanced input: likely a bad host; moving it usually resolves this",
                    self.config.anomaly_ratio * 100.0
                ),
            };
        }

        // Rule 2 — bad user update: the lag began within the window after
        // a release.
        if let (Some((version, previous, released_at)), Some(lag_since)) =
            (input.last_release, input.lag_since)
        {
            if lag_since >= released_at && lag_since.since(released_at) <= self.config.update_window
            {
                return Diagnosis {
                    cause: RootCause::BadUserUpdate {
                        suspect_version: version,
                        previous_version: previous,
                    },
                    mitigation: Mitigation::RecommendRollback(previous),
                    rationale: format!(
                        "lag began {} after the v{version} release: suspect the update; more resources may help temporarily, rollback to v{previous} if not",
                        lag_since.since(released_at)
                    ),
                };
            }
        }

        // Rule 3 — dependency failure: everyone is slow relative to the
        // known max throughput, and nothing changed. A *complete* stall
        // (zero processing while input keeps arriving — e.g. the input
        // Scribe category stops serving reads) is the extreme of the same
        // shape; zero throughput with zero input is just an idle job.
        let n = input.metrics.task_count.max(1) as f64;
        let k = input.metrics.threads_per_task.max(1) as f64;
        let observed_per_thread = input.metrics.processing_rate / (n * k);
        let total_stall = input.metrics.processing_rate <= 0.0 && input.metrics.input_rate > 0.0;
        if input.expected_per_thread > 0.0
            && observed_per_thread < input.expected_per_thread * self.config.collapse_ratio
            && (input.metrics.processing_rate > 0.0 || total_stall)
        {
            return Diagnosis {
                cause: RootCause::DependencyFailure,
                mitigation: Mitigation::AlertAndWait,
                rationale: format!(
                    "all tasks process at {:.0}% of the known per-thread max with no recent change: dependency failure or system bug; scaling would amplify downstream load",
                    observed_per_thread / input.expected_per_thread * 100.0
                ),
            };
        }

        Diagnosis {
            cause: RootCause::Unknown,
            mitigation: Mitigation::AlertAndWait,
            rationale: "no rule matched; operator investigation required".to_string(),
        }
    }
}

impl turbine_types::Snap for RootCause {
    fn snap(&self, w: &mut turbine_types::SnapWriter) {
        match self {
            RootCause::HardwareIssue { task } => {
                w.u8(0);
                w.put(task);
            }
            RootCause::BadUserUpdate {
                suspect_version,
                previous_version,
            } => {
                w.u8(1);
                w.u64(*suspect_version);
                w.u64(*previous_version);
            }
            RootCause::DependencyFailure => w.u8(2),
            RootCause::Unknown => w.u8(3),
        }
    }

    fn unsnap(r: &mut turbine_types::SnapReader<'_>) -> Result<Self, turbine_types::SnapError> {
        match r.u8("RootCause.tag")? {
            0 => Ok(RootCause::HardwareIssue { task: r.get()? }),
            1 => Ok(RootCause::BadUserUpdate {
                suspect_version: r.u64("RootCause.suspect_version")?,
                previous_version: r.u64("RootCause.previous_version")?,
            }),
            2 => Ok(RootCause::DependencyFailure),
            3 => Ok(RootCause::Unknown),
            tag => Err(turbine_types::SnapError::Tag("RootCause", tag as u64)),
        }
    }
}

impl turbine_types::Snap for Mitigation {
    fn snap(&self, w: &mut turbine_types::SnapWriter) {
        match self {
            Mitigation::MoveTask(task) => {
                w.u8(0);
                w.put(task);
            }
            Mitigation::RecommendRollback(version) => {
                w.u8(1);
                w.u64(*version);
            }
            Mitigation::AlertAndWait => w.u8(2),
        }
    }

    fn unsnap(r: &mut turbine_types::SnapReader<'_>) -> Result<Self, turbine_types::SnapError> {
        match r.u8("Mitigation.tag")? {
            0 => Ok(Mitigation::MoveTask(r.get()?)),
            1 => Ok(Mitigation::RecommendRollback(r.u64("Mitigation.version")?)),
            2 => Ok(Mitigation::AlertAndWait),
            tag => Err(turbine_types::SnapError::Tag("Mitigation", tag as u64)),
        }
    }
}

impl turbine_types::Snap for RootCauserConfig {
    fn snap(&self, w: &mut turbine_types::SnapWriter) {
        w.put(&self.anomaly_ratio);
        w.put(&self.update_window);
        w.put(&self.collapse_ratio);
    }

    fn unsnap(r: &mut turbine_types::SnapReader<'_>) -> Result<Self, turbine_types::SnapError> {
        Ok(RootCauserConfig {
            anomaly_ratio: r.get()?,
            update_window: r.get()?,
            collapse_ratio: r.get()?,
        })
    }
}

impl turbine_types::Snap for RootCauser {
    fn snap(&self, w: &mut turbine_types::SnapWriter) {
        w.put(&self.config);
    }

    fn unsnap(r: &mut turbine_types::SnapReader<'_>) -> Result<Self, turbine_types::SnapError> {
        Ok(RootCauser { config: r.get()? })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use turbine_types::{JobId, Resources};

    fn base_metrics(task_count: u32) -> JobMetrics {
        JobMetrics {
            input_rate: 4.0e6,
            processing_rate: 3.0e6,
            total_bytes_lagged: 4.0e6 * 200.0,
            per_task_rates: vec![1.0e6; task_count as usize],
            per_task_memory_mb: vec![500.0; task_count as usize],
            oom_events: 0,
            task_count,
            threads_per_task: 1,
            reserved: Resources::cpu_mem(1.0, 800.0),
            key_cardinality: None,
        }
    }

    fn task(i: u32) -> TaskId {
        TaskId::new(JobId(1), i)
    }

    fn t(mins: u64) -> SimTime {
        SimTime::ZERO + Duration::from_mins(mins)
    }

    #[test]
    fn single_slow_task_is_a_hardware_issue() {
        let mut metrics = base_metrics(4);
        metrics.per_task_rates = vec![1.0e6, 1.0e6, 0.05e6, 1.0e6];
        let rates: Vec<(TaskId, f64)> = metrics
            .per_task_rates
            .iter()
            .enumerate()
            .map(|(i, &r)| (task(i as u32), r))
            .collect();
        let d = RootCauser::default().diagnose(&DiagnosisInput {
            metrics: &metrics,
            per_task_rates: &rates,
            expected_per_thread: 1.0e6,
            last_release: None,
            lag_since: Some(t(100)),
            now: t(110),
        });
        assert_eq!(d.cause, RootCause::HardwareIssue { task: task(2) });
        assert_eq!(d.mitigation, Mitigation::MoveTask(task(2)));
    }

    #[test]
    fn lag_after_release_blames_the_update() {
        let metrics = base_metrics(4);
        let rates: Vec<(TaskId, f64)> = (0..4).map(|i| (task(i), 0.75e6)).collect();
        let d = RootCauser::default().diagnose(&DiagnosisInput {
            metrics: &metrics,
            per_task_rates: &rates,
            expected_per_thread: 1.0e6,
            last_release: Some((7, 6, t(100))),
            lag_since: Some(t(110)),
            now: t(120),
        });
        assert_eq!(
            d.cause,
            RootCause::BadUserUpdate {
                suspect_version: 7,
                previous_version: 6
            }
        );
        assert_eq!(d.mitigation, Mitigation::RecommendRollback(6));
    }

    #[test]
    fn old_release_is_not_blamed() {
        let mut metrics = base_metrics(4);
        metrics.processing_rate = 1.0e6; // collapse: 0.25 per thread
        let rates: Vec<(TaskId, f64)> = (0..4).map(|i| (task(i), 0.25e6)).collect();
        let d = RootCauser::default().diagnose(&DiagnosisInput {
            metrics: &metrics,
            per_task_rates: &rates,
            expected_per_thread: 1.0e6,
            last_release: Some((7, 6, t(10))),
            lag_since: Some(t(300)), // hours later
            now: t(310),
        });
        assert_eq!(d.cause, RootCause::DependencyFailure);
        assert_eq!(d.mitigation, Mitigation::AlertAndWait);
    }

    #[test]
    fn fleetwide_collapse_is_a_dependency_failure() {
        let mut metrics = base_metrics(8);
        metrics.processing_rate = 1.6e6; // 0.2 per thread vs P = 1.0
        let rates: Vec<(TaskId, f64)> = (0..8).map(|i| (task(i), 0.2e6)).collect();
        let d = RootCauser::default().diagnose(&DiagnosisInput {
            metrics: &metrics,
            per_task_rates: &rates,
            expected_per_thread: 1.0e6,
            last_release: None,
            lag_since: Some(t(50)),
            now: t(60),
        });
        assert_eq!(d.cause, RootCause::DependencyFailure);
    }

    #[test]
    fn total_stall_with_arrivals_is_a_dependency_failure() {
        // Reads from the input category stalled entirely: arrivals
        // continue, processing is zero across the board.
        let mut metrics = base_metrics(4);
        metrics.processing_rate = 0.0;
        let rates: Vec<(TaskId, f64)> = (0..4).map(|i| (task(i), 0.0)).collect();
        let d = RootCauser::default().diagnose(&DiagnosisInput {
            metrics: &metrics,
            per_task_rates: &rates,
            expected_per_thread: 1.0e6,
            last_release: None,
            lag_since: Some(t(50)),
            now: t(60),
        });
        assert_eq!(d.cause, RootCause::DependencyFailure);
        assert_eq!(d.mitigation, Mitigation::AlertAndWait);
    }

    #[test]
    fn healthy_looking_lag_is_unknown() {
        let metrics = base_metrics(4); // processing 0.75/thread: above collapse
        let rates: Vec<(TaskId, f64)> = (0..4).map(|i| (task(i), 0.75e6)).collect();
        let d = RootCauser::default().diagnose(&DiagnosisInput {
            metrics: &metrics,
            per_task_rates: &rates,
            expected_per_thread: 1.0e6,
            last_release: None,
            lag_since: None,
            now: t(60),
        });
        assert_eq!(d.cause, RootCause::Unknown);
    }

    #[test]
    fn imbalanced_input_is_never_a_hardware_issue() {
        // One task slow because it *receives* 10x the data (high CV):
        // that is the scaler's rebalance territory.
        let mut metrics = base_metrics(4);
        metrics.per_task_rates = vec![3.7e6, 0.1e6, 0.1e6, 0.1e6];
        let rates: Vec<(TaskId, f64)> = metrics
            .per_task_rates
            .iter()
            .enumerate()
            .map(|(i, &r)| (task(i as u32), r))
            .collect();
        let d = RootCauser::default().diagnose(&DiagnosisInput {
            metrics: &metrics,
            per_task_rates: &rates,
            expected_per_thread: 1.0e6,
            last_release: None,
            lag_since: Some(t(10)),
            now: t(20),
        });
        assert!(!matches!(d.cause, RootCause::HardwareIssue { .. }), "{d:?}");
    }

    #[test]
    fn two_slow_tasks_do_not_match_the_single_task_rule() {
        let mut metrics = base_metrics(6);
        metrics.per_task_rates = vec![1.0e6, 1.0e6, 0.05e6, 0.05e6, 1.0e6, 1.0e6];
        metrics.processing_rate = 4.1e6;
        let rates: Vec<(TaskId, f64)> = metrics
            .per_task_rates
            .iter()
            .enumerate()
            .map(|(i, &r)| (task(i as u32), r))
            .collect();
        let d = RootCauser::default().diagnose(&DiagnosisInput {
            metrics: &metrics,
            per_task_rates: &rates,
            expected_per_thread: 1.0e6,
            last_release: None,
            lag_since: Some(t(10)),
            now: t(20),
        });
        assert!(!matches!(d.cause, RootCause::HardwareIssue { .. }), "{d:?}");
    }
}
