//! Resource estimators (paper §V-B, Eq. 2 and 3).
//!
//! For stateless jobs CPU consumption is approximately proportional to the
//! data volume: with `P` the maximum stable processing rate of a single
//! thread, `k` threads per task, and `n` tasks, the CPU resource unit
//! needed for input rate `X` is `X / (P·k·n)` (Eq. 2); when a backlog `B`
//! must be recovered within time `t` it becomes `(X + B/t) / (P·k·n)`
//! (Eq. 3). For stateful jobs, memory is proportional to key cardinality
//! (aggregations) or window size and input matching (joins).

use crate::symptoms::JobMetrics;
use turbine_types::{Duration, Resources};

/// Hard ceiling on any estimated task count. A huge backlog combined with
/// a sub-second recovery window can push the effective rate to `+inf`;
/// without this clamp the `as u32` cast would saturate to `u32::MAX` and
/// the scaler would mandate four billion tasks. The value comfortably
/// exceeds any real tier (the paper's largest jobs run hundreds of tasks)
/// while staying far from integer-overflow territory in downstream math.
pub const MAX_ESTIMATED_TASKS: u32 = 1 << 20;

/// Ceiling on the CPU-units estimate (Eq. 2/3). Anything at this level
/// already reads as "hopelessly undersized"; returning a finite value
/// keeps every consumer's arithmetic (comparisons, multiplications by
/// task counts) NaN- and overflow-free.
pub const MAX_CPU_UNITS: f64 = 1.0e9;

/// Eq. 3's effective rate `X + B/t`, clamped to a finite non-negative
/// value. Degenerate inputs (negative rates from buggy meters, `B/t`
/// overflowing to `+inf` for tiny recovery windows, NaN anywhere) are
/// clamped rather than propagated.
fn effective_rate(x: f64, backlog: f64, recovery_time: Option<Duration>) -> f64 {
    let x = if x.is_finite() { x.max(0.0) } else { 0.0 };
    let rate = match recovery_time {
        Some(t) if backlog > 0.0 && !t.is_zero() => x + backlog / t.as_secs_f64(),
        _ => x,
    };
    if rate.is_finite() {
        rate
    } else {
        f64::MAX
    }
}

/// CPU resource units (fraction of the job's current capacity) needed for
/// input rate `x` — Eq. 2, or Eq. 3 when `backlog`/`recovery_time` are
/// supplied. A value above 1.0 means the job cannot keep up as sized.
///
/// Degenerate inputs are clamped, never panicked on: a non-positive or
/// non-finite `P` (bootstrap jobs legitimately report `P = 0` before the
/// first throughput sample) or a zero `k`/`n` yields `0.0` — with no
/// usable throughput estimate there is no evidence of saturation, and the
/// conservative answer is "no CPU demand" rather than a fleet-wide
/// scale-up on garbage. The result is finite for all finite inputs,
/// bounded by [`MAX_CPU_UNITS`].
pub fn cpu_units_needed(
    x: f64,
    p: f64,
    k: u32,
    n: u32,
    backlog: f64,
    recovery_time: Option<Duration>,
) -> f64 {
    if !p.is_finite() || p <= 0.0 || k == 0 || n == 0 {
        return 0.0;
    }
    let units = effective_rate(x, backlog, recovery_time) / (p * k as f64 * n as f64);
    if units.is_finite() {
        units.min(MAX_CPU_UNITS)
    } else {
        MAX_CPU_UNITS
    }
}

/// The smallest task count able to sustain input rate `x` (plus backlog
/// recovery, if requested) at per-thread throughput `p` with `k` threads
/// per task — the `n' = ceil(X/P)` rule of §V-C generalized to `k` threads.
///
/// Always in `1..=`[`MAX_ESTIMATED_TASKS`]: a non-positive or non-finite
/// `P` (bootstrap) or zero `k` returns the floor of 1 (no evidence to
/// scale on), and an effective rate that overflows the division returns
/// the ceiling instead of saturating the `u32` cast at four billion.
pub fn required_task_count(
    x: f64,
    p: f64,
    k: u32,
    backlog: f64,
    recovery_time: Option<Duration>,
) -> u32 {
    if !p.is_finite() || p <= 0.0 || k == 0 {
        return 1;
    }
    let tasks = (effective_rate(x, backlog, recovery_time) / (p * k as f64)).ceil();
    if tasks >= MAX_ESTIMATED_TASKS as f64 || !tasks.is_finite() {
        MAX_ESTIMATED_TASKS
    } else {
        (tasks as u32).max(1)
    }
}

/// A multi-dimensional resource estimate for one job.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResourceEstimate {
    /// Minimum tasks needed to sustain current input.
    pub min_task_count: u32,
    /// Tasks needed to also recover the backlog within the target.
    pub recovery_task_count: u32,
    /// Estimated per-task resource needs at `recovery_task_count`.
    pub per_task: Resources,
}

/// Configurable estimator combining the CPU model with memory/disk models
/// for stateful jobs.
#[derive(Debug, Clone, Copy)]
pub struct ResourceEstimator {
    /// Baseline memory every task consumes regardless of traffic (the
    /// paper observes ~400 MB for every Scuba tailer task: binary +
    /// metric-collection sidecar).
    pub base_memory_mb: f64,
    /// Memory per byte/sec of per-task input rate (buffering a few seconds
    /// of in-flight data).
    pub memory_per_rate: f64,
    /// Memory per state key for stateful jobs (aggregation tables).
    pub memory_per_key_mb: f64,
    /// Disk per state key for stateful jobs (spilling joins/aggregations).
    pub disk_per_key_mb: f64,
    /// Backlog recovery target used for Eq. 3.
    pub recovery_time: Duration,
}

impl Default for ResourceEstimator {
    fn default() -> Self {
        ResourceEstimator {
            base_memory_mb: 400.0,
            memory_per_rate: 8.0e-6, // ≈8 s of buffered data, in MB per B/s
            memory_per_key_mb: 1.0e-3,
            disk_per_key_mb: 4.0e-3,
            recovery_time: Duration::from_mins(10),
        }
    }
}

impl ResourceEstimator {
    /// Estimate the resources a job needs given its metrics, the current
    /// per-thread throughput estimate `p`, and whether it keeps state.
    pub fn estimate(&self, metrics: &JobMetrics, p: f64, stateful: bool) -> ResourceEstimate {
        let k = metrics.threads_per_task.max(1);
        let input_rate = if metrics.input_rate.is_finite() {
            metrics.input_rate.max(0.0)
        } else {
            0.0
        };
        let min_task_count = required_task_count(input_rate, p, k, 0.0, None);
        let recovery_task_count = required_task_count(
            input_rate,
            p,
            k,
            metrics.total_bytes_lagged,
            Some(self.recovery_time),
        );

        let n = recovery_task_count.max(1) as f64;
        let per_task_rate = input_rate / n;
        let mut memory_mb = self.base_memory_mb + per_task_rate * self.memory_per_rate;
        let mut disk_mb = 0.0;
        if stateful {
            // Aggregation/join state is partitioned across tasks: memory
            // and disk per task shrink as the task count grows — the
            // "correlated adjustment" the Plan Generator exploits.
            let keys = metrics.key_cardinality.unwrap_or(0.0) / n;
            memory_mb += keys * self.memory_per_key_mb;
            disk_mb += keys * self.disk_per_key_mb;
        }
        // CPU per task: enough to run its share at the target rate, with
        // Eq. 3 headroom folded in via the recovery task count. With no
        // usable throughput estimate (bootstrap `P = 0`) fall back to the
        // floor — the same no-evidence rule the task counts use.
        let cpu = if p.is_finite() && p > 0.0 {
            (per_task_rate / p).max(0.1)
        } else {
            0.1
        };
        ResourceEstimate {
            min_task_count,
            recovery_task_count,
            per_task: Resources::new(cpu, memory_mb, disk_mb, per_task_rate / 1.0e6),
        }
    }
}

impl turbine_types::Snap for ResourceEstimator {
    fn snap(&self, w: &mut turbine_types::SnapWriter) {
        w.put(&self.base_memory_mb);
        w.put(&self.memory_per_rate);
        w.put(&self.memory_per_key_mb);
        w.put(&self.disk_per_key_mb);
        w.put(&self.recovery_time);
    }

    fn unsnap(r: &mut turbine_types::SnapReader<'_>) -> Result<Self, turbine_types::SnapError> {
        Ok(ResourceEstimator {
            base_memory_mb: r.get()?,
            memory_per_rate: r.get()?,
            memory_per_key_mb: r.get()?,
            disk_per_key_mb: r.get()?,
            recovery_time: r.get()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq2_matches_hand_computation() {
        // X=1000 B/s, P=100 B/s/thread, k=2, n=5 ⇒ 1000/(100·2·5) = 1.0.
        assert!((cpu_units_needed(1000.0, 100.0, 2, 5, 0.0, None) - 1.0).abs() < 1e-12);
        // Half the input: half the units.
        assert!((cpu_units_needed(500.0, 100.0, 2, 5, 0.0, None) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn eq3_adds_backlog_recovery() {
        // B=60000 bytes over t=60s adds 1000 B/s of effective rate.
        let units = cpu_units_needed(1000.0, 100.0, 2, 5, 60_000.0, Some(Duration::from_secs(60)));
        assert!((units - 2.0).abs() < 1e-12);
        // No recovery target: backlog ignored.
        assert!((cpu_units_needed(1000.0, 100.0, 2, 5, 60_000.0, None) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn required_task_count_ceils_and_floors_at_one() {
        assert_eq!(required_task_count(1000.0, 100.0, 1, 0.0, None), 10);
        assert_eq!(required_task_count(1001.0, 100.0, 1, 0.0, None), 11);
        assert_eq!(required_task_count(0.0, 100.0, 1, 0.0, None), 1);
        // k threads multiply per-task capacity.
        assert_eq!(required_task_count(1000.0, 100.0, 2, 0.0, None), 5);
    }

    #[test]
    fn estimate_scales_with_backlog() {
        let estimator = ResourceEstimator::default();
        let mut metrics = JobMetrics {
            input_rate: 1.0e6,
            threads_per_task: 1,
            task_count: 10,
            ..Default::default()
        };
        let p = 2.0e5; // 200 KB/s per thread
        let idle = estimator.estimate(&metrics, p, false);
        assert_eq!(idle.min_task_count, 5);
        assert_eq!(idle.recovery_task_count, 5);

        metrics.total_bytes_lagged = 1.8e9; // 1.8 GB backlog
        let backed_up = estimator.estimate(&metrics, p, false);
        assert_eq!(backed_up.min_task_count, 5);
        assert!(
            backed_up.recovery_task_count > idle.recovery_task_count,
            "backlog must demand more tasks: {backed_up:?}"
        );
    }

    #[test]
    fn stateful_memory_shrinks_with_more_tasks() {
        let estimator = ResourceEstimator::default();
        let metrics_small = JobMetrics {
            input_rate: 1.0e6,
            threads_per_task: 1,
            key_cardinality: Some(1.0e7),
            ..Default::default()
        };
        let est_small = estimator.estimate(&metrics_small, 1.0e5, true);
        // Same job at double throughput estimate (half the tasks): more
        // memory per task.
        let est_fewer_tasks = estimator.estimate(&metrics_small, 2.0e5, true);
        assert!(est_fewer_tasks.recovery_task_count < est_small.recovery_task_count);
        assert!(est_fewer_tasks.per_task.memory_mb > est_small.per_task.memory_mb);
    }

    #[test]
    fn every_task_gets_the_memory_floor() {
        let estimator = ResourceEstimator::default();
        let metrics = JobMetrics {
            input_rate: 1.0, // almost no traffic
            threads_per_task: 1,
            ..Default::default()
        };
        let est = estimator.estimate(&metrics, 1.0e5, false);
        assert!(est.per_task.memory_mb >= 400.0, "fig. 5's ~400 MB floor");
    }

    #[test]
    fn zero_p_clamps_instead_of_panicking() {
        // Bootstrap jobs report P = 0 before their first throughput
        // sample: no evidence ⇒ no CPU demand, task floor of 1.
        assert_eq!(cpu_units_needed(1.0, 0.0, 1, 1, 0.0, None), 0.0);
        assert_eq!(required_task_count(1.0e9, 0.0, 1, 0.0, None), 1);
        // Degenerate thread/task counts take the same clamp.
        assert_eq!(cpu_units_needed(1.0, 100.0, 0, 1, 0.0, None), 0.0);
        assert_eq!(cpu_units_needed(1.0, 100.0, 1, 0, 0.0, None), 0.0);
        assert_eq!(required_task_count(1.0, 100.0, 0, 0.0, None), 1);
        let est = ResourceEstimator::default().estimate(
            &JobMetrics {
                input_rate: 1.0e6,
                threads_per_task: 1,
                ..Default::default()
            },
            0.0,
            false,
        );
        assert_eq!(est.min_task_count, 1);
        assert!(est.per_task.cpu.is_finite());
    }

    #[test]
    fn huge_backlog_with_tiny_recovery_window_stays_finite() {
        // f64::MAX backlog over a 1 ms window overflows `X + B/t` to
        // `+inf`; the cast used to saturate at u32::MAX tasks.
        let t = Some(Duration::from_millis(1));
        let tasks = required_task_count(1.0e6, 100.0, 1, f64::MAX, t);
        assert_eq!(tasks, MAX_ESTIMATED_TASKS);
        let units = cpu_units_needed(1.0e6, 100.0, 1, 4, f64::MAX, t);
        assert!(units.is_finite());
        assert_eq!(units, MAX_CPU_UNITS);
        // Large-but-finite effective rates clamp to the same ceiling.
        let tasks = required_task_count(f64::MAX, 1.0e-300, 1, 0.0, None);
        assert_eq!(tasks, MAX_ESTIMATED_TASKS);
    }

    #[test]
    fn negative_and_nan_rates_are_sanitized() {
        assert_eq!(required_task_count(-5.0e6, 100.0, 1, 0.0, None), 1);
        assert_eq!(cpu_units_needed(f64::NAN, 100.0, 1, 1, 0.0, None), 0.0);
        let units = cpu_units_needed(1000.0, 100.0, 2, 5, f64::NAN, None);
        assert!((units - 1.0).abs() < 1e-12, "NaN backlog ignored: {units}");
    }
}
