//! Resource estimators (paper §V-B, Eq. 2 and 3).
//!
//! For stateless jobs CPU consumption is approximately proportional to the
//! data volume: with `P` the maximum stable processing rate of a single
//! thread, `k` threads per task, and `n` tasks, the CPU resource unit
//! needed for input rate `X` is `X / (P·k·n)` (Eq. 2); when a backlog `B`
//! must be recovered within time `t` it becomes `(X + B/t) / (P·k·n)`
//! (Eq. 3). For stateful jobs, memory is proportional to key cardinality
//! (aggregations) or window size and input matching (joins).

use crate::symptoms::JobMetrics;
use turbine_types::{Duration, Resources};

/// CPU resource units (fraction of the job's current capacity) needed for
/// input rate `x` — Eq. 2, or Eq. 3 when `backlog`/`recovery_time` are
/// supplied. A value above 1.0 means the job cannot keep up as sized.
pub fn cpu_units_needed(
    x: f64,
    p: f64,
    k: u32,
    n: u32,
    backlog: f64,
    recovery_time: Option<Duration>,
) -> f64 {
    assert!(p > 0.0, "P must be positive (bootstrap during staging)");
    assert!(k > 0 && n > 0, "threads and tasks must be positive");
    let effective_rate = match recovery_time {
        Some(t) if backlog > 0.0 && !t.is_zero() => x + backlog / t.as_secs_f64(),
        _ => x,
    };
    effective_rate / (p * k as f64 * n as f64)
}

/// The smallest task count able to sustain input rate `x` (plus backlog
/// recovery, if requested) at per-thread throughput `p` with `k` threads
/// per task — the `n' = ceil(X/P)` rule of §V-C generalized to `k` threads.
pub fn required_task_count(
    x: f64,
    p: f64,
    k: u32,
    backlog: f64,
    recovery_time: Option<Duration>,
) -> u32 {
    assert!(p > 0.0 && k > 0);
    let effective_rate = match recovery_time {
        Some(t) if backlog > 0.0 && !t.is_zero() => x + backlog / t.as_secs_f64(),
        _ => x,
    };
    ((effective_rate / (p * k as f64)).ceil() as u32).max(1)
}

/// A multi-dimensional resource estimate for one job.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResourceEstimate {
    /// Minimum tasks needed to sustain current input.
    pub min_task_count: u32,
    /// Tasks needed to also recover the backlog within the target.
    pub recovery_task_count: u32,
    /// Estimated per-task resource needs at `recovery_task_count`.
    pub per_task: Resources,
}

/// Configurable estimator combining the CPU model with memory/disk models
/// for stateful jobs.
#[derive(Debug, Clone, Copy)]
pub struct ResourceEstimator {
    /// Baseline memory every task consumes regardless of traffic (the
    /// paper observes ~400 MB for every Scuba tailer task: binary +
    /// metric-collection sidecar).
    pub base_memory_mb: f64,
    /// Memory per byte/sec of per-task input rate (buffering a few seconds
    /// of in-flight data).
    pub memory_per_rate: f64,
    /// Memory per state key for stateful jobs (aggregation tables).
    pub memory_per_key_mb: f64,
    /// Disk per state key for stateful jobs (spilling joins/aggregations).
    pub disk_per_key_mb: f64,
    /// Backlog recovery target used for Eq. 3.
    pub recovery_time: Duration,
}

impl Default for ResourceEstimator {
    fn default() -> Self {
        ResourceEstimator {
            base_memory_mb: 400.0,
            memory_per_rate: 8.0e-6, // ≈8 s of buffered data, in MB per B/s
            memory_per_key_mb: 1.0e-3,
            disk_per_key_mb: 4.0e-3,
            recovery_time: Duration::from_mins(10),
        }
    }
}

impl ResourceEstimator {
    /// Estimate the resources a job needs given its metrics, the current
    /// per-thread throughput estimate `p`, and whether it keeps state.
    pub fn estimate(&self, metrics: &JobMetrics, p: f64, stateful: bool) -> ResourceEstimate {
        let k = metrics.threads_per_task.max(1);
        let min_task_count = required_task_count(metrics.input_rate, p, k, 0.0, None);
        let recovery_task_count = required_task_count(
            metrics.input_rate,
            p,
            k,
            metrics.total_bytes_lagged,
            Some(self.recovery_time),
        );

        let n = recovery_task_count.max(1) as f64;
        let per_task_rate = metrics.input_rate / n;
        let mut memory_mb = self.base_memory_mb + per_task_rate * self.memory_per_rate;
        let mut disk_mb = 0.0;
        if stateful {
            // Aggregation/join state is partitioned across tasks: memory
            // and disk per task shrink as the task count grows — the
            // "correlated adjustment" the Plan Generator exploits.
            let keys = metrics.key_cardinality.unwrap_or(0.0) / n;
            memory_mb += keys * self.memory_per_key_mb;
            disk_mb += keys * self.disk_per_key_mb;
        }
        // CPU per task: enough to run its share at the target rate, with
        // Eq. 3 headroom folded in via the recovery task count.
        let cpu = (per_task_rate / (p * k as f64) * k as f64).max(0.1);
        ResourceEstimate {
            min_task_count,
            recovery_task_count,
            per_task: Resources::new(cpu, memory_mb, disk_mb, per_task_rate / 1.0e6),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq2_matches_hand_computation() {
        // X=1000 B/s, P=100 B/s/thread, k=2, n=5 ⇒ 1000/(100·2·5) = 1.0.
        assert!((cpu_units_needed(1000.0, 100.0, 2, 5, 0.0, None) - 1.0).abs() < 1e-12);
        // Half the input: half the units.
        assert!((cpu_units_needed(500.0, 100.0, 2, 5, 0.0, None) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn eq3_adds_backlog_recovery() {
        // B=60000 bytes over t=60s adds 1000 B/s of effective rate.
        let units = cpu_units_needed(1000.0, 100.0, 2, 5, 60_000.0, Some(Duration::from_secs(60)));
        assert!((units - 2.0).abs() < 1e-12);
        // No recovery target: backlog ignored.
        assert!((cpu_units_needed(1000.0, 100.0, 2, 5, 60_000.0, None) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn required_task_count_ceils_and_floors_at_one() {
        assert_eq!(required_task_count(1000.0, 100.0, 1, 0.0, None), 10);
        assert_eq!(required_task_count(1001.0, 100.0, 1, 0.0, None), 11);
        assert_eq!(required_task_count(0.0, 100.0, 1, 0.0, None), 1);
        // k threads multiply per-task capacity.
        assert_eq!(required_task_count(1000.0, 100.0, 2, 0.0, None), 5);
    }

    #[test]
    fn estimate_scales_with_backlog() {
        let estimator = ResourceEstimator::default();
        let mut metrics = JobMetrics {
            input_rate: 1.0e6,
            threads_per_task: 1,
            task_count: 10,
            ..Default::default()
        };
        let p = 2.0e5; // 200 KB/s per thread
        let idle = estimator.estimate(&metrics, p, false);
        assert_eq!(idle.min_task_count, 5);
        assert_eq!(idle.recovery_task_count, 5);

        metrics.total_bytes_lagged = 1.8e9; // 1.8 GB backlog
        let backed_up = estimator.estimate(&metrics, p, false);
        assert_eq!(backed_up.min_task_count, 5);
        assert!(
            backed_up.recovery_task_count > idle.recovery_task_count,
            "backlog must demand more tasks: {backed_up:?}"
        );
    }

    #[test]
    fn stateful_memory_shrinks_with_more_tasks() {
        let estimator = ResourceEstimator::default();
        let metrics_small = JobMetrics {
            input_rate: 1.0e6,
            threads_per_task: 1,
            key_cardinality: Some(1.0e7),
            ..Default::default()
        };
        let est_small = estimator.estimate(&metrics_small, 1.0e5, true);
        // Same job at double throughput estimate (half the tasks): more
        // memory per task.
        let est_fewer_tasks = estimator.estimate(&metrics_small, 2.0e5, true);
        assert!(est_fewer_tasks.recovery_task_count < est_small.recovery_task_count);
        assert!(est_fewer_tasks.per_task.memory_mb > est_small.per_task.memory_mb);
    }

    #[test]
    fn every_task_gets_the_memory_floor() {
        let estimator = ResourceEstimator::default();
        let metrics = JobMetrics {
            input_rate: 1.0, // almost no traffic
            threads_per_task: 1,
            ..Default::default()
        };
        let est = estimator.estimate(&metrics, 1.0e5, false);
        assert!(est.per_task.memory_mb >= 400.0, "fig. 5's ~400 MB floor");
    }

    #[test]
    #[should_panic(expected = "P must be positive")]
    fn zero_p_is_rejected() {
        let _ = cpu_units_needed(1.0, 0.0, 1, 1, 0.0, None);
    }
}
