//! Content-addressed whole-simulation snapshots.
//!
//! A [`Snapshot`] captures the complete [`Turbine`] platform — engine
//! arenas and dirty sets, Scribe partitions/checkpoints/shadow cursors,
//! Job Store and WAL, shard map and standby registry, the control event
//! queue, fault injector, RNG streams, trace ring, and the ODS registry —
//! as one deterministic byte stream, split into fixed-size chunks keyed by
//! their FNV-1a digest. Identical chunks are stored once (consecutive
//! snapshots of a mostly-idle fleet share most of their bytes), and every
//! restore re-verifies each chunk against its digest, so a flipped bit
//! anywhere in a blob is a clean [`SnapError::Corrupt`] — never a panic
//! and never a silently wrong simulation.
//!
//! The contract that makes snapshots useful for divergence bisection:
//! restore-then-drive is bit-for-bit identical (platform fingerprint,
//! trace digest, incident log) to the uninterrupted run, in both drive
//! modes. Anything a component forgets to serialize shows up as a
//! restore-divergence, which turns hidden-state bugs into mechanically
//! findable ones.

use std::collections::BTreeMap;
use turbine::Turbine;
use turbine_types::{Snap, SnapError, SnapReader, SnapWriter};

/// File magic for serialized snapshot blobs.
pub const SNAP_MAGIC: [u8; 8] = *b"TRBNSNAP";

/// Blob format version. Bump on any encoding change: restore refuses
/// mismatched versions instead of misdecoding.
pub const SNAP_VERSION: u32 = 1;

/// Chunk size of the content-addressed store. Small enough that an idle
/// region of the platform dedupes across consecutive captures, large
/// enough that the manifest stays a few hundred entries per snapshot.
pub const CHUNK_SIZE: usize = 4096;

/// FNV-1a over a byte slice — the chunk content address.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut digest = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        digest ^= b as u64;
        digest = digest.wrapping_mul(0x0000_0100_0000_01B3);
    }
    digest
}

/// Capture-time context carried alongside the platform bytes, so a blob
/// is self-describing: a restored run can re-apply the remainder of its
/// scenario without the caller re-supplying it.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SnapshotMeta {
    /// Simulated capture time, milliseconds since t=0.
    pub captured_at_ms: u64,
    /// The scenario source text the captured run was driving (JSON), if
    /// the capture came from a scenario runner.
    pub scenario: Option<String>,
    /// The scenario minute the capture was taken at, if minute-aligned.
    pub at_mins: Option<u64>,
}

impl Snap for SnapshotMeta {
    fn snap(&self, w: &mut SnapWriter) {
        w.u64(self.captured_at_ms);
        w.put(&self.scenario);
        w.put(&self.at_mins);
    }

    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(SnapshotMeta {
            captured_at_ms: r.u64("SnapshotMeta.captured_at_ms")?,
            scenario: r.get()?,
            at_mins: r.get()?,
        })
    }
}

/// A complete platform snapshot: manifest of chunk digests plus the
/// deduplicated chunk store.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// Capture-time context (scenario text, capture minute).
    pub meta: SnapshotMeta,
    /// Chunk digests in stream order — the recipe for reassembly.
    manifest: Vec<u64>,
    /// Total platform-stream length; the final chunk is usually short.
    total_len: u64,
    /// Content-addressed chunks: digest → bytes, stored once each.
    chunks: BTreeMap<u64, Vec<u8>>,
}

impl Snapshot {
    /// Capture the complete platform state.
    pub fn capture(platform: &Turbine) -> Snapshot {
        Self::capture_with_meta(
            platform,
            SnapshotMeta {
                captured_at_ms: platform.now().as_millis(),
                scenario: None,
                at_mins: None,
            },
        )
    }

    /// Capture with explicit capture-time context (scenario runners).
    pub fn capture_with_meta(platform: &Turbine, meta: SnapshotMeta) -> Snapshot {
        let mut w = SnapWriter::new();
        w.put(platform);
        let stream = w.into_bytes();
        let mut manifest = Vec::with_capacity(stream.len().div_ceil(CHUNK_SIZE));
        let mut chunks = BTreeMap::new();
        for chunk in stream.chunks(CHUNK_SIZE) {
            let digest = fnv1a(chunk);
            manifest.push(digest);
            chunks.entry(digest).or_insert_with(|| chunk.to_vec());
        }
        Snapshot {
            meta,
            manifest,
            total_len: stream.len() as u64,
            chunks,
        }
    }

    /// Reassemble and verify the platform stream: every chunk is
    /// re-hashed against its manifest digest before use.
    fn verified_stream(&self) -> Result<Vec<u8>, SnapError> {
        let mut stream = Vec::with_capacity(self.total_len as usize);
        for (i, &digest) in self.manifest.iter().enumerate() {
            let chunk = self.chunks.get(&digest).ok_or_else(|| {
                SnapError::Corrupt(format!("manifest chunk {i} ({digest:#018x}) missing"))
            })?;
            if fnv1a(chunk) != digest {
                return Err(SnapError::Corrupt(format!(
                    "chunk {i} content does not match digest {digest:#018x}"
                )));
            }
            stream.extend_from_slice(chunk);
        }
        if stream.len() as u64 != self.total_len {
            return Err(SnapError::Corrupt(format!(
                "reassembled stream is {} bytes, manifest says {}",
                stream.len(),
                self.total_len
            )));
        }
        Ok(stream)
    }

    /// Restore the platform. Verifies every chunk digest, then decodes;
    /// any corruption or truncation is a clean error.
    pub fn restore(&self) -> Result<Turbine, SnapError> {
        let stream = self.verified_stream()?;
        let mut r = SnapReader::new(&stream);
        let platform: Turbine = r.get()?;
        r.expect_end()?;
        Ok(platform)
    }

    /// Number of chunks in stream order (manifest length).
    pub fn chunk_count(&self) -> usize {
        self.manifest.len()
    }

    /// Number of distinct stored chunks (≤ [`Self::chunk_count`]; the
    /// difference is intra-snapshot dedup).
    pub fn unique_chunk_count(&self) -> usize {
        self.chunks.len()
    }

    /// Total platform-stream bytes this snapshot represents.
    pub fn stream_len(&self) -> u64 {
        self.total_len
    }

    /// Serialize to the on-disk blob format (magic, version, meta,
    /// manifest, chunk store).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = SnapWriter::new();
        w.bytes(&SNAP_MAGIC);
        w.u32(SNAP_VERSION);
        w.put(&self.meta);
        w.put(&self.manifest);
        w.u64(self.total_len);
        w.put(&self.chunks);
        w.into_bytes()
    }

    /// Deserialize a blob, validating magic and version. Chunk digests are
    /// verified later, at [`Self::restore`] time.
    pub fn from_bytes(data: &[u8]) -> Result<Snapshot, SnapError> {
        let mut r = SnapReader::new(data);
        let magic = r.bytes("Snapshot.magic")?;
        if magic != SNAP_MAGIC {
            return Err(SnapError::Corrupt(
                "not a turbine snapshot (bad magic)".to_string(),
            ));
        }
        let version = r.u32("Snapshot.version")?;
        if version != SNAP_VERSION {
            return Err(SnapError::Corrupt(format!(
                "snapshot format version {version}, this build reads {SNAP_VERSION}"
            )));
        }
        let snapshot = Snapshot {
            meta: r.get()?,
            manifest: r.get()?,
            total_len: r.u64("Snapshot.total_len")?,
            chunks: r.get()?,
        };
        r.expect_end()?;
        Ok(snapshot)
    }
}

/// How many chunks two snapshots share — the cross-snapshot dedup a
/// periodic capture cadence gets for free. Counts distinct digests
/// present in both stores.
pub fn shared_chunks(a: &Snapshot, b: &Snapshot) -> usize {
    a.chunks.keys().filter(|d| b.chunks.contains_key(d)).count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use turbine::TurbineConfig;
    use turbine_types::{Duration, JobId, Resources};

    fn small_platform() -> Turbine {
        let mut config = TurbineConfig::default();
        config.shard_count = 64;
        let mut t = Turbine::new(config);
        t.add_hosts(4, Resources::new(56.0, 256.0 * 1024.0, 1.0e6, 1000.0));
        t.provision_job(
            JobId(1),
            turbine_config::JobConfig::stateless("snap_roundtrip", 4, 8),
            turbine_workloads::TrafficModel::flat(2.0e6),
            1.0e6,
            512.0,
        )
        .expect("provision");
        t.run_for(Duration::from_mins(10));
        t
    }

    #[test]
    fn capture_restore_roundtrips_bytes() {
        let t = small_platform();
        let snap = Snapshot::capture(&t);
        let restored = snap.restore().expect("restore");
        // Byte-identical re-capture: nothing was lost or reordered.
        let again = Snapshot::capture(&restored);
        assert_eq!(snap.manifest, again.manifest);
        assert_eq!(snap.total_len, again.total_len);
        assert_eq!(t.fingerprint(), restored.fingerprint());
    }

    #[test]
    fn blob_roundtrip_and_dedup() {
        let t = small_platform();
        let snap = Snapshot::capture(&t);
        let blob = snap.to_bytes();
        let back = Snapshot::from_bytes(&blob).expect("parse");
        assert_eq!(snap, back);
        assert!(back.unique_chunk_count() <= back.chunk_count());
        assert_eq!(back.restore().expect("restore").now(), t.now());
    }

    #[test]
    fn consecutive_snapshots_share_chunks() {
        let mut t = small_platform();
        let a = Snapshot::capture(&t);
        t.run_for(Duration::from_secs(30));
        let b = Snapshot::capture(&t);
        // A 30 s step leaves most of the platform stream untouched.
        assert!(shared_chunks(&a, &b) > 0);
    }

    #[test]
    fn bit_flip_is_rejected_cleanly() {
        let t = small_platform();
        let snap = Snapshot::capture(&t);
        let mut blob = snap.to_bytes();
        // Flip one bit in the middle of the chunk store.
        let target = blob.len() / 2;
        blob[target] ^= 0x10;
        // Either the container fails to parse or the chunk digest check
        // catches it at restore — both are clean errors, never a panic.
        match Snapshot::from_bytes(&blob) {
            Err(_) => {}
            Ok(parsed) => {
                assert!(parsed.restore().is_err(), "flipped bit must not restore");
            }
        }
    }

    #[test]
    fn truncated_blob_is_rejected_cleanly() {
        let t = small_platform();
        let blob = Snapshot::capture(&t).to_bytes();
        assert!(Snapshot::from_bytes(&blob[..blob.len() / 2]).is_err());
        assert!(Snapshot::from_bytes(b"not a snapshot").is_err());
    }
}
