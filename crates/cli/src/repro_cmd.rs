//! `turbinesim repro <file>`: replay a fuzz-campaign repro file through
//! every oracle and report the verdict.
//!
//! A repro file is the shrunk scenario the fuzz harness serialized when a
//! campaign case failed (see `crates/fuzz`). Replaying runs the scenario
//! in dense-tick mode, event-driven mode, and an event-driven replay, and
//! re-checks all four oracles — so a fixed bug shows `PASS` here, and an
//! unfixed one reproduces deterministically, bit for bit, on any machine.

use std::fmt::Write as _;
use turbine_fuzz::{run_case, FuzzScenario};

/// Replay one repro file. Returns the rendered report and whether every
/// oracle passed.
pub fn repro_report(json: &str) -> Result<(String, bool), String> {
    let scenario = FuzzScenario::from_json(json)?;
    let report = run_case(&scenario);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "repro seed {}: {} hosts ({:.1} cpu), {} jobs, {} faults, {} flaps, {} min @ tick {}s",
        scenario.seed,
        scenario.hosts,
        scenario.host_cpu,
        scenario.jobs.len(),
        scenario.faults.len(),
        scenario.flaps.len(),
        scenario.horizon_mins,
        scenario.tick_secs,
    );
    if let Some(artifacts) = &report.event_artifacts {
        let _ = writeln!(
            out,
            "event-mode trace digest: {:#018x}",
            artifacts.trace_digest
        );
    }
    if report.passed() {
        let _ = writeln!(
            out,
            "oracles: invariants clean, dense/event fingerprints match, \
             replay deterministic, durable reads ok"
        );
        let _ = writeln!(out, "PASS");
    } else {
        for failure in &report.failures {
            let _ = writeln!(out, "FAIL {failure}");
        }
        // Fingerprint divergences come with a bisection verdict: the
        // first divergent round, localized via the runs' auto-snapshots.
        for divergence in &report.divergences {
            let _ = write!(out, "{divergence}");
        }
    }
    Ok((out, report.passed()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use turbine_fuzz::generate;

    #[test]
    fn passing_repro_reports_pass() {
        let json = generate(0).to_json();
        let (report, passed) = repro_report(&json).expect("valid repro");
        assert!(passed, "seed 0 must pass: {report}");
        assert!(report.contains("PASS"));
        assert!(report.contains("trace digest"));
    }

    #[test]
    fn invalid_repro_is_an_error() {
        assert!(repro_report("{}").is_err());
        assert!(repro_report("not json").is_err());
    }
}
