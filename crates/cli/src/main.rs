//! `turbinesim`: run Turbine platform scenarios from the command line.
//!
//! ```text
//! turbinesim demo                 # run the built-in demo scenario
//! turbinesim run scenario.json    # run a scenario file
//! turbinesim schema               # print the demo scenario JSON as a format reference
//! ```

use turbine_cli::{run_scenario, Scenario};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let usage = "usage: turbinesim <demo | run <scenario.json> | schema>";
    match args.get(1).map(String::as_str) {
        Some("demo") => {
            let scenario = Scenario::demo();
            eprintln!(
                "running demo: {} hosts, {} jobs, {} events, {:.1} h",
                scenario.hosts,
                scenario.jobs.len(),
                scenario.events.len(),
                scenario.duration_hours
            );
            print!("{}", run_scenario(&scenario).render());
        }
        Some("run") => {
            let Some(path) = args.get(2) else {
                eprintln!("{usage}");
                std::process::exit(2);
            };
            let text = match std::fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("cannot read {path}: {e}");
                    std::process::exit(1);
                }
            };
            let scenario = match Scenario::parse(&text) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("{e}");
                    std::process::exit(1);
                }
            };
            print!("{}", run_scenario(&scenario).render());
        }
        Some("schema") => {
            println!("{}", turbine_cli::scenario::DEMO_SCENARIO);
        }
        _ => {
            eprintln!("{usage}");
            std::process::exit(2);
        }
    }
}
