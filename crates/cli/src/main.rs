//! `turbinesim`: run Turbine platform scenarios from the command line.
//!
//! ```text
//! turbinesim demo                 # run the built-in demo scenario
//! turbinesim run scenario.json    # run a scenario file
//! turbinesim trace <scenario>     # run, then query the causal decision trace
//! turbinesim metrics <scenario>   # run, then export the ODS registry (--jsonl | --prom)
//! turbinesim top <scenario>       # live operator console while the scenario runs
//! turbinesim repro <repro.json>   # replay a fuzz repro file through every oracle
//! turbinesim snapshot <scenario> --at-mins N   # capture mid-run state to a blob
//! turbinesim restore <blob.tsnap>              # resume a blob to the scenario horizon
//! turbinesim schema               # print the demo scenario JSON as a format reference
//! turbinesim faults               # list chaos fault events for scenario timelines
//! ```
//!
//! Scenario timelines support chaos-engine events alongside host and job
//! events: `{"action": "inject_fault", "at_mins": N, "fault": <name>, ...}`
//! activates a fault (optionally auto-clearing after `duration_mins`) and
//! `clear_fault` ends it. See `turbinesim faults` for the fault names and
//! their addressing fields.

use turbine_cli::{
    metrics_report, repro_report, run_scenario, run_scenario_traced, run_top, trace_report,
    MetricsFormat, Scenario, TraceQuery,
};

const TRACE_HELP: &str = "\
usage: turbinesim trace <demo | scenario.json> [flags]

runs the scenario, then queries the control plane's causal decision trace.

flags:
  --job <name>          only records about this scenario job
  --component <name>    only records from this control component's rounds
                        (heartbeat, tm_refresh, state_syncer, auto_scaler,
                        load_report, rebalance, capacity_manager, checkpoint,
                        metrics, data_plane, chaos_engine)
  --from-mins <N>       drop records before minute N of simulated time
  --to-mins <N>         drop records after minute N
  --explain <job>       print the causal chain (fault -> symptom -> decision)
                        behind the most recent decision about the job
  --jsonl               dump retained records as JSONL for offline tools";

const FAULT_HELP: &str = "\
chaos fault events for scenario timelines:

  {\"action\": \"inject_fault\", \"at_mins\": N, \"fault\": <name>, ...}
  {\"action\": \"clear_fault\",  \"at_mins\": N, \"fault\": <name>, ...}

fault names:
  task_service_down   Task Service unreachable; Task Managers keep serving
                      their cached snapshot (new/changed jobs wait)
  job_store_down      Job Store unavailable; sync + scaling pause, oncall
                      writes fail until it returns
  heartbeat_loss      container on host <host> stops heart-beating; needs
                      \"host\": <index>. Sustained loss triggers fail-over
  syncer_crash        State Syncer process down; on clear it restarts and
                      resumes from the persisted expected-vs-running diff
  scribe_stall        reads from job <job>'s input category stall; needs
                      \"job\": <name>. Backlog grows until cleared

optional: \"duration_mins\": M auto-clears the fault M minutes later;
without it the fault stays active until a matching clear_fault event.";

/// Load `demo` or a scenario file, exiting with a message on failure.
fn load_scenario(target: &str) -> Scenario {
    if target == "demo" {
        return Scenario::demo();
    }
    let text = match std::fs::read_to_string(target) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {target}: {e}");
            std::process::exit(1);
        }
    };
    match Scenario::parse(&text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(1);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let usage = "usage: turbinesim <demo | run <scenario.json> | trace <scenario> [flags] | \
                 metrics <scenario> [--jsonl | --prom] | top <scenario> [--refresh-mins N] | \
                 repro <repro.json> | snapshot <scenario> --at-mins N [--out FILE] | \
                 restore <blob.tsnap> | schema | faults>";
    match args.get(1).map(String::as_str) {
        Some("demo") => {
            let scenario = Scenario::demo();
            eprintln!(
                "running demo: {} hosts, {} jobs, {} events, {:.1} h",
                scenario.hosts,
                scenario.jobs.len(),
                scenario.events.len(),
                scenario.duration_hours
            );
            print!("{}", run_scenario(&scenario).render());
        }
        Some("run") => {
            let Some(path) = args.get(2) else {
                eprintln!("{usage}");
                std::process::exit(2);
            };
            let text = match std::fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("cannot read {path}: {e}");
                    std::process::exit(1);
                }
            };
            let scenario = match Scenario::parse(&text) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("{e}");
                    std::process::exit(1);
                }
            };
            print!("{}", run_scenario(&scenario).render());
        }
        Some("trace") => {
            let Some(target) = args.get(2) else {
                eprintln!("{TRACE_HELP}");
                std::process::exit(2);
            };
            if target == "--help" {
                println!("{TRACE_HELP}");
                return;
            }
            let scenario = load_scenario(target);
            let query = match TraceQuery::parse(&args[3..]) {
                Ok(q) => q,
                Err(e) => {
                    eprintln!("{e}\n\n{TRACE_HELP}");
                    std::process::exit(2);
                }
            };
            let run = run_scenario_traced(&scenario);
            match trace_report(&run, &query) {
                Ok(report) => print!("{report}"),
                Err(e) => {
                    eprintln!("{e}");
                    std::process::exit(1);
                }
            }
        }
        Some("metrics") => {
            let Some(target) = args.get(2) else {
                eprintln!("usage: turbinesim metrics <demo | scenario.json> [--jsonl | --prom]");
                std::process::exit(2);
            };
            let scenario = load_scenario(target);
            let format = match MetricsFormat::parse(&args[3..]) {
                Ok(f) => f,
                Err(e) => {
                    eprintln!("{e}\nusage: turbinesim metrics <scenario> [--jsonl | --prom]");
                    std::process::exit(2);
                }
            };
            print!("{}", metrics_report(&scenario, format));
        }
        Some("top") => {
            let Some(target) = args.get(2) else {
                eprintln!("usage: turbinesim top <demo | scenario.json> [--refresh-mins N]");
                std::process::exit(2);
            };
            let scenario = load_scenario(target);
            let mut refresh_mins = scenario.report_every_mins;
            let mut rest = args[3..].iter();
            while let Some(flag) = rest.next() {
                match flag.as_str() {
                    "--refresh-mins" => {
                        refresh_mins = rest
                            .next()
                            .and_then(|v| v.parse().ok())
                            .filter(|&n| n > 0)
                            .unwrap_or_else(|| {
                                eprintln!("--refresh-mins needs a positive integer");
                                std::process::exit(2);
                            });
                    }
                    other => {
                        eprintln!("unknown top flag '{other}'");
                        std::process::exit(2);
                    }
                }
            }
            // On a live terminal each frame repaints the screen; piped
            // output just concatenates frames (and stays deterministic).
            use std::io::IsTerminal;
            let live = std::io::stdout().is_terminal();
            run_top(&scenario, refresh_mins, |frame| {
                if live {
                    print!("\x1b[2J\x1b[H{frame}");
                } else {
                    println!("{frame}");
                }
            });
        }
        Some("repro") => {
            let Some(path) = args.get(2) else {
                eprintln!("{usage}");
                std::process::exit(2);
            };
            let text = match std::fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("cannot read {path}: {e}");
                    std::process::exit(1);
                }
            };
            match repro_report(&text) {
                Ok((report, passed)) => {
                    print!("{report}");
                    if !passed {
                        std::process::exit(1);
                    }
                }
                Err(e) => {
                    eprintln!("invalid repro file {path}: {e}");
                    std::process::exit(1);
                }
            }
        }
        Some("snapshot") => {
            let Some(target) = args.get(2) else {
                eprintln!(
                    "usage: turbinesim snapshot <demo | scenario.json> --at-mins N [--out FILE]"
                );
                std::process::exit(2);
            };
            let text = if target == "demo" {
                turbine_cli::scenario::DEMO_SCENARIO.to_string()
            } else {
                match std::fs::read_to_string(target) {
                    Ok(t) => t,
                    Err(e) => {
                        eprintln!("cannot read {target}: {e}");
                        std::process::exit(1);
                    }
                }
            };
            let scenario = match Scenario::parse(&text) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("{e}");
                    std::process::exit(1);
                }
            };
            let mut at_mins = None;
            let mut out = None;
            let mut rest = args[3..].iter();
            while let Some(flag) = rest.next() {
                match flag.as_str() {
                    "--at-mins" => {
                        at_mins = rest.next().and_then(|v| v.parse::<u64>().ok());
                        if at_mins.is_none() {
                            eprintln!("--at-mins needs a positive integer");
                            std::process::exit(2);
                        }
                    }
                    "--out" => out = rest.next().cloned(),
                    other => {
                        eprintln!("unknown snapshot flag '{other}'");
                        std::process::exit(2);
                    }
                }
            }
            let Some(at_mins) = at_mins else {
                eprintln!(
                    "usage: turbinesim snapshot <demo | scenario.json> --at-mins N [--out FILE]"
                );
                std::process::exit(2);
            };
            let stem = if target == "demo" {
                "demo"
            } else {
                target.as_str()
            };
            let out = out.unwrap_or_else(|| format!("{stem}.at{at_mins}.tsnap"));
            match turbine_cli::snapshot_scenario(&scenario, &text, at_mins) {
                Ok((snapshot, report)) => {
                    if let Err(e) = std::fs::write(&out, snapshot.to_bytes()) {
                        eprintln!("cannot write {out}: {e}");
                        std::process::exit(1);
                    }
                    print!("{report}");
                    println!("wrote {out}");
                }
                Err(e) => {
                    eprintln!("{e}");
                    std::process::exit(1);
                }
            }
        }
        Some("restore") => {
            let Some(path) = args.get(2) else {
                eprintln!("usage: turbinesim restore <blob.tsnap>");
                std::process::exit(2);
            };
            let blob = match std::fs::read(path) {
                Ok(b) => b,
                Err(e) => {
                    eprintln!("cannot read {path}: {e}");
                    std::process::exit(1);
                }
            };
            match turbine_cli::restore_blob(&blob) {
                Ok((at_mins, summary, scenario)) => {
                    eprintln!(
                        "restored minute {at_mins}/{}; resuming to the horizon",
                        scenario.total_mins()
                    );
                    print!("{}", summary.render());
                }
                Err(e) => {
                    eprintln!("{e}");
                    std::process::exit(1);
                }
            }
        }
        Some("schema") => {
            println!("{}", turbine_cli::scenario::DEMO_SCENARIO);
        }
        Some("faults") => {
            println!("{FAULT_HELP}");
        }
        _ => {
            eprintln!("{usage}");
            std::process::exit(2);
        }
    }
}
