//! `turbinesim`: run Turbine platform scenarios from the command line.
//!
//! ```text
//! turbinesim demo                 # run the built-in demo scenario
//! turbinesim run scenario.json    # run a scenario file
//! turbinesim trace <scenario>     # run, then query the causal decision trace
//! turbinesim repro <repro.json>   # replay a fuzz repro file through every oracle
//! turbinesim schema               # print the demo scenario JSON as a format reference
//! turbinesim faults               # list chaos fault events for scenario timelines
//! ```
//!
//! Scenario timelines support chaos-engine events alongside host and job
//! events: `{"action": "inject_fault", "at_mins": N, "fault": <name>, ...}`
//! activates a fault (optionally auto-clearing after `duration_mins`) and
//! `clear_fault` ends it. See `turbinesim faults` for the fault names and
//! their addressing fields.

use turbine_cli::{
    repro_report, run_scenario, run_scenario_traced, trace_report, Scenario, TraceQuery,
};

const TRACE_HELP: &str = "\
usage: turbinesim trace <demo | scenario.json> [flags]

runs the scenario, then queries the control plane's causal decision trace.

flags:
  --job <name>          only records about this scenario job
  --component <name>    only records from this control component's rounds
                        (heartbeat, tm_refresh, state_syncer, auto_scaler,
                        load_report, rebalance, capacity_manager, checkpoint,
                        metrics, data_plane, chaos_engine)
  --from-mins <N>       drop records before minute N of simulated time
  --to-mins <N>         drop records after minute N
  --explain <job>       print the causal chain (fault -> symptom -> decision)
                        behind the most recent decision about the job
  --jsonl               dump retained records as JSONL for offline tools";

const FAULT_HELP: &str = "\
chaos fault events for scenario timelines:

  {\"action\": \"inject_fault\", \"at_mins\": N, \"fault\": <name>, ...}
  {\"action\": \"clear_fault\",  \"at_mins\": N, \"fault\": <name>, ...}

fault names:
  task_service_down   Task Service unreachable; Task Managers keep serving
                      their cached snapshot (new/changed jobs wait)
  job_store_down      Job Store unavailable; sync + scaling pause, oncall
                      writes fail until it returns
  heartbeat_loss      container on host <host> stops heart-beating; needs
                      \"host\": <index>. Sustained loss triggers fail-over
  syncer_crash        State Syncer process down; on clear it restarts and
                      resumes from the persisted expected-vs-running diff
  scribe_stall        reads from job <job>'s input category stall; needs
                      \"job\": <name>. Backlog grows until cleared

optional: \"duration_mins\": M auto-clears the fault M minutes later;
without it the fault stays active until a matching clear_fault event.";

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let usage = "usage: turbinesim <demo | run <scenario.json> | trace <scenario> [flags] | \
                 repro <repro.json> | schema | faults>";
    match args.get(1).map(String::as_str) {
        Some("demo") => {
            let scenario = Scenario::demo();
            eprintln!(
                "running demo: {} hosts, {} jobs, {} events, {:.1} h",
                scenario.hosts,
                scenario.jobs.len(),
                scenario.events.len(),
                scenario.duration_hours
            );
            print!("{}", run_scenario(&scenario).render());
        }
        Some("run") => {
            let Some(path) = args.get(2) else {
                eprintln!("{usage}");
                std::process::exit(2);
            };
            let text = match std::fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("cannot read {path}: {e}");
                    std::process::exit(1);
                }
            };
            let scenario = match Scenario::parse(&text) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("{e}");
                    std::process::exit(1);
                }
            };
            print!("{}", run_scenario(&scenario).render());
        }
        Some("trace") => {
            let Some(target) = args.get(2) else {
                eprintln!("{TRACE_HELP}");
                std::process::exit(2);
            };
            if target == "--help" {
                println!("{TRACE_HELP}");
                return;
            }
            let scenario = if target == "demo" {
                Scenario::demo()
            } else {
                let text = match std::fs::read_to_string(target) {
                    Ok(t) => t,
                    Err(e) => {
                        eprintln!("cannot read {target}: {e}");
                        std::process::exit(1);
                    }
                };
                match Scenario::parse(&text) {
                    Ok(s) => s,
                    Err(e) => {
                        eprintln!("{e}");
                        std::process::exit(1);
                    }
                }
            };
            let query = match TraceQuery::parse(&args[3..]) {
                Ok(q) => q,
                Err(e) => {
                    eprintln!("{e}\n\n{TRACE_HELP}");
                    std::process::exit(2);
                }
            };
            let run = run_scenario_traced(&scenario);
            match trace_report(&run, &query) {
                Ok(report) => print!("{report}"),
                Err(e) => {
                    eprintln!("{e}");
                    std::process::exit(1);
                }
            }
        }
        Some("repro") => {
            let Some(path) = args.get(2) else {
                eprintln!("{usage}");
                std::process::exit(2);
            };
            let text = match std::fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("cannot read {path}: {e}");
                    std::process::exit(1);
                }
            };
            match repro_report(&text) {
                Ok((report, passed)) => {
                    print!("{report}");
                    if !passed {
                        std::process::exit(1);
                    }
                }
                Err(e) => {
                    eprintln!("invalid repro file {path}: {e}");
                    std::process::exit(1);
                }
            }
        }
        Some("schema") => {
            println!("{}", turbine_cli::scenario::DEMO_SCENARIO);
        }
        Some("faults") => {
            println!("{FAULT_HELP}");
        }
        _ => {
            eprintln!("{usage}");
            std::process::exit(2);
        }
    }
}
