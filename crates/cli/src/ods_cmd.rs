//! `turbinesim metrics` and `turbinesim top`: ODS registry export and the
//! live operator console.
//!
//! Both subcommands ride the same [`drive_scenario`] loop the other
//! subcommands use. `metrics` runs the scenario to completion and dumps
//! every registry series (and every alert incident) as JSONL or a
//! Prometheus-style text exposition; `top` renders a console frame every
//! refresh interval while the scenario runs, ending on the final state.

use crate::runner::drive_scenario;
use crate::scenario::Scenario;
use std::fmt::Write as _;
use turbine::Turbine;
use turbine_types::JobId;

/// Output format for `turbinesim metrics`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricsFormat {
    /// One JSON object per line: every series, then every incident.
    Jsonl,
    /// Prometheus-style text exposition of each series' latest sample.
    Prom,
}

impl MetricsFormat {
    /// Parse trailing `--jsonl` / `--prom` flags (default: JSONL).
    pub fn parse(flags: &[String]) -> Result<MetricsFormat, String> {
        let mut format = MetricsFormat::Jsonl;
        for flag in flags {
            match flag.as_str() {
                "--jsonl" => format = MetricsFormat::Jsonl,
                "--prom" => format = MetricsFormat::Prom,
                other => return Err(format!("unknown metrics flag '{other}'")),
            }
        }
        Ok(format)
    }
}

/// Run the scenario to completion and export the ODS registry plus the
/// full incident log in the requested format.
pub fn metrics_report(scenario: &Scenario, format: MetricsFormat) -> String {
    let (turbine, _) = drive_scenario(scenario, |_, _| {});
    match format {
        MetricsFormat::Jsonl => {
            turbine_ods::export::to_jsonl(turbine.ods_registry(), turbine.incidents())
        }
        MetricsFormat::Prom => {
            turbine_ods::export::to_prom(turbine.ods_registry(), turbine.incidents())
        }
    }
}

/// Drive the scenario, handing a rendered console frame to `sink` every
/// `refresh_mins` minutes of simulated time (plus a final frame).
pub fn run_top(scenario: &Scenario, refresh_mins: u64, mut sink: impl FnMut(&str)) {
    let refresh = refresh_mins.max(1);
    let total_mins = (scenario.duration_hours * 60.0).ceil() as u64;
    drive_scenario(scenario, |turbine, minute| {
        if minute % refresh == 0 || minute == total_mins {
            sink(&top_frame(scenario, turbine, minute));
        }
    });
}

/// Render one `turbinesim top` frame: a per-job table (tier, tasks, lag,
/// backlog) followed by the fleet-health dashboard, which carries the
/// active-incident list and per-tier SLO accounting.
pub fn top_frame(scenario: &Scenario, turbine: &Turbine, minute: u64) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "turbinesim top — {} (minute {minute} of {})",
        turbine.now(),
        (scenario.duration_hours * 60.0).ceil() as u64,
    );
    let _ = writeln!(
        out,
        "{:<24} {:>11} {:>6} {:>9} {:>11}",
        "job", "tier", "tasks", "lag_s", "backlog_mb"
    );
    for (i, job) in scenario.jobs.iter().enumerate() {
        // Same deterministic numbering the runner provisions with.
        let id = JobId(i as u64 + 1);
        let Some(status) = turbine.job_status(id) else {
            let _ = writeln!(
                out,
                "{:<24} {:>11} {:>6} {:>9} {:>11}",
                format!("{} (deleted)", job.name),
                "-",
                0,
                "-",
                "-"
            );
            continue;
        };
        let rate = turbine.job_arrival_rate(id).unwrap_or(0.0).max(1.0);
        let _ = writeln!(
            out,
            "{:<24} {:>11} {:>6} {:>9.1} {:>11.1}",
            job.name,
            job.resiliency.as_str(),
            status.running_tasks,
            status.backlog_bytes / rate,
            status.backlog_bytes / 1.0e6,
        );
    }
    out.push('\n');
    out.push_str(&turbine::fleet_health(turbine).render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Scenario {
        Scenario::parse(
            r#"{
              "hosts": 3, "duration_hours": 1.0,
              "jobs": [
                {"name": "a", "tasks": 2, "partitions": 16, "rate_mbps": 2.0, "seed": 1},
                {"name": "b", "tasks": 1, "partitions": 8, "rate_mbps": 0.5, "seed": 2}
              ]
            }"#,
        )
        .expect("parse")
    }

    #[test]
    fn metrics_jsonl_lists_platform_and_job_series() {
        let report = metrics_report(&tiny(), MetricsFormat::Jsonl);
        assert!(
            report.contains(r#""key":"platform/cluster_traffic_bps""#),
            "{report}"
        );
        assert!(report.contains(r#""key":"job/1/lag_secs""#), "{report}");
        // Every line is a JSON object.
        for line in report.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        }
    }

    #[test]
    fn metrics_prom_exposes_gauges() {
        let report = metrics_report(&tiny(), MetricsFormat::Prom);
        assert!(report.contains("turbine_cluster_traffic_bps "), "{report}");
        assert!(
            report.contains(r#"turbine_incidents_active{severity="critical"}"#),
            "{report}"
        );
    }

    #[test]
    fn metrics_formats_parse_and_reject_unknown_flags() {
        assert_eq!(MetricsFormat::parse(&[]), Ok(MetricsFormat::Jsonl));
        assert_eq!(
            MetricsFormat::parse(&["--prom".to_string()]),
            Ok(MetricsFormat::Prom)
        );
        assert!(MetricsFormat::parse(&["--xml".to_string()]).is_err());
    }

    #[test]
    fn top_renders_a_frame_per_refresh_interval() {
        let mut frames = Vec::new();
        run_top(&tiny(), 15, |frame| frames.push(frame.to_string()));
        assert_eq!(frames.len(), 4, "15-min frames over 1 h");
        let last = frames.last().expect("frames");
        assert!(last.contains("turbinesim top"), "{last}");
        assert!(last.contains("job"), "{last}");
        assert!(last.lines().any(|l| l.starts_with("a ")), "{last}");
        assert!(last.contains("fleet:"), "{last}");
    }
}
