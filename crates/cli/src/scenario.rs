//! Scenario schema and parsing.
//!
//! Scenarios are plain JSON handled by the workspace's own config parser,
//! so the CLI needs no external dependencies and scenario files enjoy the
//! same deterministic parse/print semantics as job configurations.

use std::fmt;
use turbine::AlertRule;
use turbine_config::{ConfigValue, ResiliencyClass};

/// A job described by a scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioJob {
    /// Job name (also the Scribe category prefix).
    pub name: String,
    /// Initial task count.
    pub tasks: u32,
    /// Input partitions.
    pub partitions: u32,
    /// Base input rate, MB/s.
    pub rate_mbps: f64,
    /// Diurnal swing fraction (0 = flat).
    pub diurnal: f64,
    /// `max_task_count` for the job.
    pub max_tasks: u32,
    /// State key cardinality; 0 means stateless.
    pub stateful_keys: f64,
    /// Seed for the job's traffic noise.
    pub seed: u64,
    /// Resiliency class (`best_effort`/`standard`/`critical`); critical
    /// jobs get a warm standby and the fast fail-over path.
    pub resiliency: ResiliencyClass,
}

/// One timeline event.
#[derive(Debug, Clone, PartialEq)]
pub enum ScenarioEvent {
    /// Fail the `host`-th host at `at_mins`.
    FailHost {
        /// Firing time, minutes from start.
        at_mins: u64,
        /// Index into the scenario's host list.
        host: usize,
    },
    /// Recover the `host`-th host.
    RecoverHost {
        /// Firing time, minutes from start.
        at_mins: u64,
        /// Index into the scenario's host list.
        host: usize,
    },
    /// Multiply every job's traffic by `multiplier` for `duration_mins`.
    Storm {
        /// Firing time, minutes from start.
        at_mins: u64,
        /// Peak traffic multiplier (e.g. 1.16).
        multiplier: f64,
        /// Window length in minutes.
        duration_mins: u64,
    },
    /// Write an Oncall-level integer override on a job.
    OncallSet {
        /// Firing time, minutes from start.
        at_mins: u64,
        /// Target job name.
        job: String,
        /// Config path, e.g. `"task_count"`.
        path: String,
        /// Integer value to pin.
        value: i64,
    },
    /// Clear all Oncall overrides on a job.
    OncallClear {
        /// Firing time, minutes from start.
        at_mins: u64,
        /// Target job name.
        job: String,
    },
    /// Delete a job.
    DeleteJob {
        /// Firing time, minutes from start.
        at_mins: u64,
        /// Target job name.
        job: String,
    },
    /// Activate a chaos-engine fault (see `turbine::Fault`).
    InjectFault {
        /// Firing time, minutes from start.
        at_mins: u64,
        /// Fault name: `task_service_down`, `job_store_down`,
        /// `heartbeat_loss` (needs `host`), `syncer_crash`, or
        /// `scribe_stall` (needs `job`).
        fault: String,
        /// Host index for `heartbeat_loss`.
        host: Option<usize>,
        /// Job name for `scribe_stall`.
        job: Option<String>,
        /// Auto-clear after this many minutes; omitted = until an
        /// explicit `clear_fault`.
        duration_mins: Option<u64>,
    },
    /// Clear a previously injected fault (same addressing fields).
    ClearFault {
        /// Firing time, minutes from start.
        at_mins: u64,
        /// Fault name (as for `inject_fault`).
        fault: String,
        /// Host index for `heartbeat_loss`.
        host: Option<usize>,
        /// Job name for `scribe_stall`.
        job: Option<String>,
    },
}

impl ScenarioEvent {
    /// Firing time in minutes.
    pub fn at_mins(&self) -> u64 {
        match self {
            ScenarioEvent::FailHost { at_mins, .. }
            | ScenarioEvent::RecoverHost { at_mins, .. }
            | ScenarioEvent::Storm { at_mins, .. }
            | ScenarioEvent::OncallSet { at_mins, .. }
            | ScenarioEvent::OncallClear { at_mins, .. }
            | ScenarioEvent::DeleteJob { at_mins, .. }
            | ScenarioEvent::InjectFault { at_mins, .. }
            | ScenarioEvent::ClearFault { at_mins, .. } => *at_mins,
        }
    }
}

/// Fault names scenarios may use with `inject_fault`/`clear_fault`.
pub const FAULT_NAMES: [&str; 5] = [
    "task_service_down",
    "job_store_down",
    "heartbeat_loss",
    "syncer_crash",
    "scribe_stall",
];

/// A complete scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Number of hosts.
    pub hosts: usize,
    /// Per-host CPU cores.
    pub host_cpu: f64,
    /// Per-host memory in GB.
    pub host_memory_gb: f64,
    /// Simulation length in hours.
    pub duration_hours: f64,
    /// Reporting interval in minutes.
    pub report_every_mins: u64,
    /// Whether the Auto Scaler runs.
    pub scaler_enabled: bool,
    /// Whether the load balancer runs.
    pub load_balancing: bool,
    /// Whether the ODS metrics registry and alerting engine run.
    pub ods_enabled: bool,
    /// The jobs to provision at time zero.
    pub jobs: Vec<ScenarioJob>,
    /// Timeline events, sorted by firing time.
    pub events: Vec<ScenarioEvent>,
    /// Declarative alert rules from the scenario's `"alerts"` array,
    /// already resolved against the scenario's job names. Installed on
    /// top of the platform's default per-critical-job lag rules.
    pub alert_rules: Vec<AlertRule>,
}

/// Error describing why a scenario failed to parse or validate.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioError(pub String);

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid scenario: {}", self.0)
    }
}

impl std::error::Error for ScenarioError {}

fn err(msg: impl Into<String>) -> ScenarioError {
    ScenarioError(msg.into())
}

fn get_f64(v: &ConfigValue, path: &str, default: Option<f64>) -> Result<f64, ScenarioError> {
    match v.get_path(path).and_then(|x| x.as_float()) {
        Some(f) => Ok(f),
        None => default.ok_or_else(|| err(format!("missing numeric field '{path}'"))),
    }
}

fn get_u64(v: &ConfigValue, path: &str, default: Option<u64>) -> Result<u64, ScenarioError> {
    match v.get_path(path).and_then(|x| x.as_int()) {
        Some(i) if i >= 0 => Ok(i as u64),
        Some(_) => Err(err(format!("field '{path}' must be non-negative"))),
        None => default.ok_or_else(|| err(format!("missing integer field '{path}'"))),
    }
}

fn get_str(v: &ConfigValue, path: &str) -> Result<String, ScenarioError> {
    v.get_path(path)
        .and_then(|x| x.as_str())
        .map(str::to_string)
        .ok_or_else(|| err(format!("missing string field '{path}'")))
}

/// Every key the scenario root object understands. Anything else is a
/// typo (e.g. `duration_hour`) and fails loudly instead of silently
/// falling back to a default.
const ROOT_KEYS: [&str; 10] = [
    "hosts",
    "host",
    "duration_hours",
    "report_every_mins",
    "scaler_enabled",
    "load_balancing",
    "ods_enabled",
    "jobs",
    "events",
    "alerts",
];

/// Keys a job object understands.
const JOB_KEYS: [&str; 9] = [
    "name",
    "tasks",
    "partitions",
    "rate_mbps",
    "diurnal",
    "max_tasks",
    "stateful_keys",
    "seed",
    "resiliency",
];

/// Keys a timeline event understands (the union across actions; each
/// action validates its required fields separately).
const EVENT_KEYS: [&str; 9] = [
    "action",
    "at_mins",
    "host",
    "job",
    "path",
    "int",
    "multiplier",
    "duration_mins",
    "fault",
];

/// Reject unknown keys in a scenario object so misspellings fail loudly.
fn reject_unknown_keys(v: &ConfigValue, what: &str, allowed: &[&str]) -> Result<(), ScenarioError> {
    let Some(map) = v.as_map() else {
        return Err(err(format!("{what} must be an object")));
    };
    for key in map.keys() {
        if !allowed.contains(&key.as_str()) {
            return Err(err(format!(
                "{what}: unknown key '{key}' (one of: {})",
                allowed.join(", ")
            )));
        }
    }
    Ok(())
}

impl Scenario {
    /// Parse a scenario from JSON text.
    pub fn parse(text: &str) -> Result<Scenario, ScenarioError> {
        let root = turbine_config::parse(text).map_err(|e| err(e.to_string()))?;
        Self::from_value(&root)
    }

    /// Total simulated minutes this scenario drives.
    pub fn total_mins(&self) -> u64 {
        (self.duration_hours * 60.0).ceil() as u64
    }

    /// Decode a scenario from an already-parsed config value.
    pub fn from_value(root: &ConfigValue) -> Result<Scenario, ScenarioError> {
        reject_unknown_keys(root, "scenario", &ROOT_KEYS)?;
        if let Some(host) = root.get_path("host") {
            reject_unknown_keys(host, "host", &["cpu", "memory_gb"])?;
        }
        let jobs_value = root
            .get_path("jobs")
            .and_then(|v| v.as_array())
            .ok_or_else(|| err("missing 'jobs' array"))?;
        if jobs_value.is_empty() {
            return Err(err("scenario needs at least one job"));
        }
        let mut jobs = Vec::with_capacity(jobs_value.len());
        for (i, jv) in jobs_value.iter().enumerate() {
            reject_unknown_keys(jv, &format!("job {i}"), &JOB_KEYS)?;
            let name = get_str(jv, "name")?;
            let tasks = get_u64(jv, "tasks", Some(1))? as u32;
            let partitions = get_u64(jv, "partitions", Some(64))? as u32;
            if tasks == 0 || partitions < tasks {
                return Err(err(format!(
                    "job '{name}': need 1 <= tasks <= partitions (got {tasks}/{partitions})"
                )));
            }
            let resiliency = match jv.get_path("resiliency").and_then(|x| x.as_str()) {
                None => ResiliencyClass::Standard,
                Some(s) => ResiliencyClass::from_str(s).ok_or_else(|| {
                    err(format!(
                        "job '{name}': unknown resiliency class '{s}' \
                         (one of: best_effort, standard, critical)"
                    ))
                })?,
            };
            jobs.push(ScenarioJob {
                name,
                tasks,
                partitions,
                rate_mbps: get_f64(jv, "rate_mbps", Some(1.0))?,
                diurnal: get_f64(jv, "diurnal", Some(0.0))?,
                max_tasks: get_u64(jv, "max_tasks", Some(64))? as u32,
                stateful_keys: get_f64(jv, "stateful_keys", Some(0.0))?,
                seed: get_u64(jv, "seed", Some(i as u64))?,
                resiliency,
            });
        }

        let mut events = Vec::new();
        if let Some(list) = root.get_path("events").and_then(|v| v.as_array()) {
            for (i, ev) in list.iter().enumerate() {
                reject_unknown_keys(ev, &format!("event {i}"), &EVENT_KEYS)?;
                let action = get_str(ev, "action")?;
                let at_mins = get_u64(ev, "at_mins", None)?;
                let event = match action.as_str() {
                    "fail_host" => ScenarioEvent::FailHost {
                        at_mins,
                        host: get_u64(ev, "host", None)? as usize,
                    },
                    "recover_host" => ScenarioEvent::RecoverHost {
                        at_mins,
                        host: get_u64(ev, "host", None)? as usize,
                    },
                    "storm" => ScenarioEvent::Storm {
                        at_mins,
                        multiplier: get_f64(ev, "multiplier", None)?,
                        duration_mins: get_u64(ev, "duration_mins", None)?,
                    },
                    "oncall_set" => ScenarioEvent::OncallSet {
                        at_mins,
                        job: get_str(ev, "job")?,
                        path: get_str(ev, "path")?,
                        value: ev
                            .get_path("int")
                            .and_then(|x| x.as_int())
                            .ok_or_else(|| err("oncall_set needs an 'int' value"))?,
                    },
                    "oncall_clear" => ScenarioEvent::OncallClear {
                        at_mins,
                        job: get_str(ev, "job")?,
                    },
                    "delete_job" => ScenarioEvent::DeleteJob {
                        at_mins,
                        job: get_str(ev, "job")?,
                    },
                    "inject_fault" => ScenarioEvent::InjectFault {
                        at_mins,
                        fault: get_str(ev, "fault")?,
                        host: ev
                            .get_path("host")
                            .and_then(|x| x.as_int())
                            .map(|h| h as usize),
                        job: ev
                            .get_path("job")
                            .and_then(|x| x.as_str())
                            .map(str::to_string),
                        duration_mins: ev
                            .get_path("duration_mins")
                            .and_then(|x| x.as_int())
                            .map(|d| d as u64),
                    },
                    "clear_fault" => ScenarioEvent::ClearFault {
                        at_mins,
                        fault: get_str(ev, "fault")?,
                        host: ev
                            .get_path("host")
                            .and_then(|x| x.as_int())
                            .map(|h| h as usize),
                        job: ev
                            .get_path("job")
                            .and_then(|x| x.as_str())
                            .map(str::to_string),
                    },
                    other => return Err(err(format!("unknown action '{other}'"))),
                };
                events.push(event);
            }
        }
        events.sort_by_key(ScenarioEvent::at_mins);

        // Alert rules resolve job names against the provisioning order the
        // runner uses: the i-th scenario job becomes `JobId(i + 1)`.
        let mut alert_rules = Vec::new();
        if let Some(list) = root.get_path("alerts").and_then(|v| v.as_array()) {
            let resolve = |name: &str| {
                jobs.iter()
                    .position(|j| j.name == name)
                    .map(|i| i as u64 + 1)
            };
            alert_rules =
                turbine::parse_rules(list, resolve).map_err(|e| err(format!("alerts: {e}")))?;
        }

        let scenario = Scenario {
            hosts: get_u64(root, "hosts", Some(4))? as usize,
            host_cpu: get_f64(root, "host.cpu", Some(56.0))?,
            host_memory_gb: get_f64(root, "host.memory_gb", Some(256.0))?,
            duration_hours: get_f64(root, "duration_hours", Some(2.0))?,
            report_every_mins: get_u64(root, "report_every_mins", Some(30))?,
            scaler_enabled: root
                .get_path("scaler_enabled")
                .and_then(|v| v.as_bool())
                .unwrap_or(true),
            load_balancing: root
                .get_path("load_balancing")
                .and_then(|v| v.as_bool())
                .unwrap_or(true),
            ods_enabled: root
                .get_path("ods_enabled")
                .and_then(|v| v.as_bool())
                .unwrap_or(true),
            jobs,
            events,
            alert_rules,
        };
        if scenario.hosts == 0 {
            return Err(err("scenario needs at least one host"));
        }
        for e in &scenario.events {
            let known = |job: &str| scenario.jobs.iter().any(|j| j.name == job);
            match e {
                ScenarioEvent::FailHost { host, .. } | ScenarioEvent::RecoverHost { host, .. } => {
                    if *host >= scenario.hosts {
                        return Err(err(format!(
                            "event references host {host} of {}",
                            scenario.hosts
                        )));
                    }
                }
                ScenarioEvent::OncallSet { job, .. }
                | ScenarioEvent::OncallClear { job, .. }
                | ScenarioEvent::DeleteJob { job, .. } => {
                    if !known(job) {
                        return Err(err(format!("event references unknown job '{job}'")));
                    }
                }
                ScenarioEvent::Storm { multiplier, .. } => {
                    if *multiplier <= 0.0 {
                        return Err(err("storm multiplier must be positive"));
                    }
                }
                ScenarioEvent::InjectFault {
                    fault, host, job, ..
                }
                | ScenarioEvent::ClearFault {
                    fault, host, job, ..
                } => {
                    if !FAULT_NAMES.contains(&fault.as_str()) {
                        return Err(err(format!(
                            "unknown fault '{fault}' (one of: {})",
                            FAULT_NAMES.join(", ")
                        )));
                    }
                    if fault == "heartbeat_loss" {
                        match host {
                            Some(h) if *h < scenario.hosts => {}
                            Some(h) => {
                                return Err(err(format!(
                                    "fault event references host {h} of {}",
                                    scenario.hosts
                                )))
                            }
                            None => return Err(err("heartbeat_loss needs a 'host' index")),
                        }
                    }
                    if fault == "scribe_stall" {
                        match job {
                            Some(j) if known(j) => {}
                            Some(j) => {
                                return Err(err(format!(
                                    "fault event references unknown job '{j}'"
                                )))
                            }
                            None => return Err(err("scribe_stall needs a 'job' name")),
                        }
                    }
                }
            }
        }
        Ok(scenario)
    }

    /// The built-in demo scenario: a small diurnal fleet with a host
    /// failure and a storm.
    pub fn demo() -> Scenario {
        Scenario::parse(DEMO_SCENARIO).expect("built-in demo must parse")
    }
}

/// The JSON text of the built-in demo scenario (also a format reference).
pub const DEMO_SCENARIO: &str = r#"{
  "hosts": 6,
  "host": {"cpu": 56.0, "memory_gb": 256.0},
  "duration_hours": 6.0,
  "report_every_mins": 30,
  "scaler_enabled": true,
  "jobs": [
    {"name": "clicks", "tasks": 4, "partitions": 64, "rate_mbps": 4.0, "diurnal": 0.3, "max_tasks": 64, "seed": 1},
    {"name": "views",  "tasks": 2, "partitions": 32, "rate_mbps": 2.0, "diurnal": 0.3, "max_tasks": 64, "seed": 2},
    {"name": "counters", "tasks": 4, "partitions": 64, "rate_mbps": 3.0, "stateful_keys": 5000000.0, "max_tasks": 64, "seed": 3}
  ],
  "events": [
    {"action": "fail_host", "at_mins": 90, "host": 0},
    {"action": "recover_host", "at_mins": 150, "host": 0},
    {"action": "storm", "at_mins": 210, "multiplier": 1.2, "duration_mins": 90},
    {"action": "oncall_set", "at_mins": 300, "job": "views", "path": "task_count", "int": 8}
  ]
}"#;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demo_scenario_parses_and_validates() {
        let s = Scenario::demo();
        assert_eq!(s.hosts, 6);
        assert_eq!(s.jobs.len(), 3);
        assert_eq!(s.events.len(), 4);
        assert!(s.jobs[2].stateful_keys > 0.0);
    }

    #[test]
    fn events_are_sorted_by_time() {
        let s = Scenario::parse(
            r#"{"jobs": [{"name": "j"}],
                "events": [
                  {"action": "oncall_clear", "at_mins": 50, "job": "j"},
                  {"action": "fail_host", "at_mins": 10, "host": 0}
                ]}"#,
        )
        .expect("parse");
        assert_eq!(s.events[0].at_mins(), 10);
        assert_eq!(s.events[1].at_mins(), 50);
    }

    #[test]
    fn defaults_fill_optional_fields() {
        let s = Scenario::parse(r#"{"jobs": [{"name": "solo"}]}"#).expect("parse");
        assert_eq!(s.hosts, 4);
        assert_eq!(s.jobs[0].tasks, 1);
        assert_eq!(s.jobs[0].partitions, 64);
        assert_eq!(s.jobs[0].resiliency, ResiliencyClass::Standard);
        assert!(s.scaler_enabled);
        assert!(s.events.is_empty());
    }

    #[test]
    fn resiliency_classes_parse_and_validate() {
        let s = Scenario::parse(
            r#"{"jobs": [
                  {"name": "a", "resiliency": "critical"},
                  {"name": "b", "resiliency": "best_effort"}
                ]}"#,
        )
        .expect("parse");
        assert_eq!(s.jobs[0].resiliency, ResiliencyClass::Critical);
        assert_eq!(s.jobs[1].resiliency, ResiliencyClass::BestEffort);
        assert!(
            Scenario::parse(r#"{"jobs": [{"name": "a", "resiliency": "platinum"}]}"#).is_err(),
            "unknown resiliency class"
        );
    }

    #[test]
    fn alert_rules_parse_and_resolve_job_names() {
        let s = Scenario::parse(
            r#"{"jobs": [{"name": "other"}, {"name": "billing"}],
                "alerts": [
                  {"name": "lag-high", "scope": "job", "job": "billing",
                   "metric": "lag_secs", "kind": "threshold", "above": 90.0,
                   "for_mins": 2, "severity": "critical"},
                  {"name": "fleet-quiet", "metric": "cluster_traffic_bps",
                   "kind": "absence", "stale_for_mins": 5}
                ]}"#,
        )
        .expect("parse");
        assert_eq!(s.alert_rules.len(), 2);
        assert_eq!(s.alert_rules[0].name, "lag-high");
        // "billing" is the second job, so it resolves to JobId 2's raw id.
        assert_eq!(s.alert_rules[0].metric.to_string(), "job/2/lag_secs");
        assert!(s.ods_enabled, "ODS defaults on");
    }

    #[test]
    fn alert_rules_with_unknown_jobs_are_rejected() {
        assert!(
            Scenario::parse(
                r#"{"jobs": [{"name": "j"}],
                    "alerts": [{"name": "r", "scope": "job", "job": "ghost",
                                "metric": "lag_secs", "kind": "threshold", "above": 1.0}]}"#
            )
            .is_err(),
            "unknown job in alert rule"
        );
        assert!(
            Scenario::parse(
                r#"{"jobs": [{"name": "j"}],
                    "alerts": [{"name": "r", "metric": "m", "kind": "sorcery"}]}"#
            )
            .is_err(),
            "unknown rule kind"
        );
    }

    #[test]
    fn invalid_scenarios_are_rejected() {
        assert!(Scenario::parse("{}").is_err(), "no jobs");
        assert!(Scenario::parse(r#"{"jobs": []}"#).is_err(), "empty jobs");
        assert!(
            Scenario::parse(r#"{"jobs": [{"name": "j", "tasks": 9, "partitions": 4}]}"#).is_err(),
            "tasks > partitions"
        );
        assert!(
            Scenario::parse(
                r#"{"jobs": [{"name": "j"}],
                    "events": [{"action": "fail_host", "at_mins": 1, "host": 99}]}"#
            )
            .is_err(),
            "host out of range"
        );
        assert!(
            Scenario::parse(
                r#"{"jobs": [{"name": "j"}],
                    "events": [{"action": "delete_job", "at_mins": 1, "job": "ghost"}]}"#
            )
            .is_err(),
            "unknown job"
        );
        assert!(
            Scenario::parse(
                r#"{"jobs": [{"name": "j"}],
                    "events": [{"action": "explode", "at_mins": 1}]}"#
            )
            .is_err(),
            "unknown action"
        );
        assert!(Scenario::parse("not json").is_err());
    }

    #[test]
    fn misspelled_keys_are_rejected_loudly() {
        let e = Scenario::parse(r#"{"jobs": [{"name": "j"}], "duration_hour": 2.0}"#)
            .expect_err("root typo");
        assert!(e.to_string().contains("unknown key 'duration_hour'"), "{e}");
        let e = Scenario::parse(r#"{"jobs": [{"name": "j", "resilency": "critical"}]}"#)
            .expect_err("job typo");
        assert!(e.to_string().contains("unknown key 'resilency'"), "{e}");
        let e = Scenario::parse(
            r#"{"jobs": [{"name": "j"}],
                "events": [{"action": "fail_host", "at_mins": 1, "host": 0, "durationmins": 5}]}"#,
        )
        .expect_err("event typo");
        assert!(e.to_string().contains("unknown key 'durationmins'"), "{e}");
        let e = Scenario::parse(r#"{"jobs": [{"name": "j"}], "host": {"cpus": 4.0}}"#)
            .expect_err("host typo");
        assert!(e.to_string().contains("unknown key 'cpus'"), "{e}");
    }

    #[test]
    fn fault_events_parse_with_addressing_fields() {
        let s = Scenario::parse(
            r#"{"jobs": [{"name": "j"}],
                "events": [
                  {"action": "inject_fault", "at_mins": 10, "fault": "task_service_down", "duration_mins": 5},
                  {"action": "inject_fault", "at_mins": 20, "fault": "heartbeat_loss", "host": 1},
                  {"action": "inject_fault", "at_mins": 30, "fault": "scribe_stall", "job": "j"},
                  {"action": "clear_fault", "at_mins": 40, "fault": "heartbeat_loss", "host": 1}
                ]}"#,
        )
        .expect("parse");
        assert_eq!(s.events.len(), 4);
        assert!(matches!(
            &s.events[0],
            ScenarioEvent::InjectFault { fault, duration_mins: Some(5), .. } if fault == "task_service_down"
        ));
        assert!(matches!(
            &s.events[1],
            ScenarioEvent::InjectFault { host: Some(1), .. }
        ));
        assert!(matches!(
            &s.events[3],
            ScenarioEvent::ClearFault { host: Some(1), .. }
        ));
    }

    #[test]
    fn invalid_fault_events_are_rejected() {
        assert!(
            Scenario::parse(
                r#"{"jobs": [{"name": "j"}],
                    "events": [{"action": "inject_fault", "at_mins": 1, "fault": "gremlins"}]}"#
            )
            .is_err(),
            "unknown fault name"
        );
        assert!(
            Scenario::parse(
                r#"{"jobs": [{"name": "j"}],
                    "events": [{"action": "inject_fault", "at_mins": 1, "fault": "heartbeat_loss"}]}"#
            )
            .is_err(),
            "heartbeat_loss without host"
        );
        assert!(
            Scenario::parse(
                r#"{"jobs": [{"name": "j"}],
                    "events": [{"action": "inject_fault", "at_mins": 1, "fault": "heartbeat_loss", "host": 9}]}"#
            )
            .is_err(),
            "host out of range"
        );
        assert!(
            Scenario::parse(
                r#"{"jobs": [{"name": "j"}],
                    "events": [{"action": "inject_fault", "at_mins": 1, "fault": "scribe_stall"}]}"#
            )
            .is_err(),
            "scribe_stall without job"
        );
        assert!(
            Scenario::parse(
                r#"{"jobs": [{"name": "j"}],
                    "events": [{"action": "inject_fault", "at_mins": 1, "fault": "scribe_stall", "job": "ghost"}]}"#
            )
            .is_err(),
            "scribe_stall with unknown job"
        );
    }
}
