//! The `turbinesim snapshot` / `turbinesim restore` verbs: capture a
//! scenario run mid-flight into a content-addressed blob, and resume a
//! blob to the scenario horizon.
//!
//! A snapshot blob is self-describing: it embeds the scenario JSON and
//! the capture minute, so `restore` needs nothing but the blob — it
//! re-parses the embedded scenario, rebinds job names and host indices
//! (both are pure functions of the scenario), and drives the remaining
//! minutes exactly as the uninterrupted run would have.

use crate::runner::{
    drive_scenario_minutes, provision_scenario, report_row_observer, scenario_bindings, summarize,
    RunSummary,
};
use crate::scenario::Scenario;
use turbine_snap::{Snapshot, SnapshotMeta};

/// Run `scenario` to minute `at_mins` and capture the platform into a
/// snapshot blob embedding the scenario text. Returns the snapshot and a
/// one-line capture report.
pub fn snapshot_scenario(
    scenario: &Scenario,
    scenario_text: &str,
    at_mins: u64,
) -> Result<(Snapshot, String), String> {
    let total = scenario.total_mins();
    if at_mins == 0 || at_mins >= total {
        return Err(format!(
            "--at-mins must be inside the scenario: 1..{}",
            total - 1
        ));
    }
    let (mut turbine, ids) = provision_scenario(scenario);
    drive_scenario_minutes(&mut turbine, scenario, &ids, 0, at_mins, |_, _| {});
    let snapshot = Snapshot::capture_with_meta(
        &turbine,
        SnapshotMeta {
            captured_at_ms: turbine.now().as_millis(),
            scenario: Some(scenario_text.to_string()),
            at_mins: Some(at_mins),
        },
    );
    let report = format!(
        "captured minute {at_mins}/{total}: {} chunks ({} unique), {} KiB platform stream\n",
        snapshot.chunk_count(),
        snapshot.unique_chunk_count(),
        snapshot.stream_len() / 1024,
    );
    Ok((snapshot, report))
}

/// Restore a snapshot blob and drive the embedded scenario to its
/// horizon. Returns the capture minute, the resumed run's summary (report
/// rows cover the resumed span only), and the scenario it replayed.
pub fn restore_blob(blob: &[u8]) -> Result<(u64, RunSummary, Scenario), String> {
    let snapshot = Snapshot::from_bytes(blob).map_err(|e| format!("unreadable snapshot: {e}"))?;
    let text = snapshot
        .meta
        .scenario
        .as_deref()
        .ok_or("snapshot has no embedded scenario; cannot resume")?;
    let at_mins = snapshot
        .meta
        .at_mins
        .ok_or("snapshot has no capture minute; cannot resume")?;
    let scenario = Scenario::parse(text).map_err(|e| format!("embedded scenario: {e}"))?;
    let mut turbine = snapshot
        .restore()
        .map_err(|e| format!("corrupt snapshot: {e}"))?;
    let (_, ids) = scenario_bindings(&turbine, &scenario);
    let mut rows = Vec::new();
    drive_scenario_minutes(
        &mut turbine,
        &scenario,
        &ids,
        at_mins,
        scenario.total_mins(),
        report_row_observer(&scenario, &mut rows),
    );
    let run = summarize(&turbine, ids, rows);
    Ok((at_mins, run.summary, scenario))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_scenario;

    const SCENARIO: &str = r#"{
      "hosts": 3, "duration_hours": 1.0, "report_every_mins": 10,
      "jobs": [
        {"name": "a", "tasks": 2, "partitions": 16, "rate_mbps": 2.0, "seed": 1},
        {"name": "b", "tasks": 1, "partitions": 8, "rate_mbps": 0.5, "seed": 2}
      ],
      "events": [
        {"action": "inject_fault", "at_mins": 20, "fault": "heartbeat_loss", "host": 1, "duration_mins": 10},
        {"action": "fail_host", "at_mins": 40, "host": 2},
        {"action": "recover_host", "at_mins": 50, "host": 2}
      ]
    }"#;

    #[test]
    fn restored_run_matches_uninterrupted_tail() {
        let scenario = Scenario::parse(SCENARIO).expect("parse");
        let full = run_scenario(&scenario);

        // Capture before the first event, restore through the blob form,
        // resume to the horizon.
        let (snapshot, _) = snapshot_scenario(&scenario, SCENARIO, 15).expect("capture");
        let blob = snapshot.to_bytes();
        let (at_mins, resumed, _) = restore_blob(&blob).expect("restore");
        assert_eq!(at_mins, 15);

        // The resumed rows are exactly the uninterrupted run's tail rows,
        // and the final counters and job states agree bit for bit.
        let tail: Vec<_> = full
            .rows
            .iter()
            .filter(|(h, ..)| *h > 15.0 / 60.0)
            .cloned()
            .collect();
        assert_eq!(resumed.rows, tail);
        assert_eq!(resumed.counters, full.counters);
        assert_eq!(resumed.jobs, full.jobs);
        assert_eq!(resumed.fault_log, full.fault_log);
    }

    #[test]
    fn capture_inside_fault_window_still_matches() {
        let scenario = Scenario::parse(SCENARIO).expect("parse");
        let full = run_scenario(&scenario);
        let (snapshot, _) = snapshot_scenario(&scenario, SCENARIO, 25).expect("capture");
        let (_, resumed, _) = restore_blob(&snapshot.to_bytes()).expect("restore");
        assert_eq!(resumed.counters, full.counters);
        assert_eq!(resumed.jobs, full.jobs);
        assert_eq!(resumed.fault_log, full.fault_log);
    }

    #[test]
    fn out_of_range_capture_minute_is_rejected() {
        let scenario = Scenario::parse(SCENARIO).expect("parse");
        assert!(snapshot_scenario(&scenario, SCENARIO, 0).is_err());
        assert!(snapshot_scenario(&scenario, SCENARIO, 60).is_err());
    }

    #[test]
    fn garbage_blob_is_rejected() {
        assert!(restore_blob(b"definitely not a snapshot").is_err());
    }
}
