//! Scenario-driven front end for the Turbine platform simulator.
//!
//! A *scenario* is a JSON file (parsed with the workspace's own
//! [`turbine_config`] parser — the same representation job configs use)
//! describing a cluster, a set of jobs, and a timeline of events to
//! inject: host failures, storms, oncall overrides, deletions. The
//! [`runner`] executes it against a full [`turbine::Turbine`] platform and
//! reports the metrics over time.
//!
//! ```sh
//! cargo run --release -p turbine-cli --bin turbinesim -- demo
//! cargo run --release -p turbine-cli --bin turbinesim -- run scenario.json
//! ```

pub mod runner;
pub mod scenario;

pub use runner::{run_scenario, RunSummary};
pub use scenario::{Scenario, ScenarioError, ScenarioEvent};
