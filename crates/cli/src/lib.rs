//! Scenario-driven front end for the Turbine platform simulator.
//!
//! A *scenario* is a JSON file (parsed with the workspace's own
//! [`turbine_config`] parser — the same representation job configs use)
//! describing a cluster, a set of jobs, and a timeline of events to
//! inject: host failures, storms, oncall overrides, deletions. The
//! [`runner`] executes it against a full [`turbine::Turbine`] platform and
//! reports the metrics over time.
//!
//! ```sh
//! cargo run --release -p turbine-cli --bin turbinesim -- demo
//! cargo run --release -p turbine-cli --bin turbinesim -- run scenario.json
//! ```

pub mod ods_cmd;
pub mod repro_cmd;
pub mod runner;
pub mod scenario;
pub mod snap_cmd;
pub mod trace_cmd;

pub use ods_cmd::{metrics_report, run_top, top_frame, MetricsFormat};
pub use repro_cmd::repro_report;
pub use runner::{drive_scenario, run_scenario, run_scenario_traced, RunSummary, TracedRun};
pub use scenario::{Scenario, ScenarioError, ScenarioEvent};
pub use snap_cmd::{restore_blob, snapshot_scenario};
pub use trace_cmd::{trace_report, TraceQuery};
