//! Scenario execution against a full platform.

use crate::scenario::{Scenario, ScenarioEvent};
use std::collections::BTreeMap;
use turbine::{Fault, Turbine, TurbineConfig};
use turbine_config::{ConfigValue, JobConfig};
use turbine_types::{Duration, HostId, JobId, Resources, SimTime};
use turbine_workloads::{TrafficEvent, TrafficEventKind, TrafficModel};

/// Outcome of a scenario run: the report rows plus final aggregates.
#[derive(Debug, Clone)]
pub struct RunSummary {
    /// One row per report interval: (hours, traffic MB/s, running tasks,
    /// SLO-ok fraction, total backlog MB).
    pub rows: Vec<(f64, f64, f64, f64, f64)>,
    /// Final per-job status lines: (name, running tasks, backlog MB).
    pub jobs: Vec<(String, usize, f64)>,
    /// Lifecycle counters: (task starts, stops, restarts, shard moves,
    /// fail-overs, scaling actions, alerts).
    pub counters: [u64; 7],
    /// The rendered fleet-health dashboard at the end of the run (§VII).
    pub dashboard: String,
    /// Chaos-engine fault timeline: (hours, `inject/clear <fault>`).
    pub fault_log: Vec<(f64, String)>,
}

impl RunSummary {
    /// Render the summary as the CLI prints it.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:>7}  {:>13}  {:>7}  {:>7}  {:>12}\n",
            "hour", "traffic_mb_s", "tasks", "slo_ok", "backlog_mb"
        ));
        for &(h, traffic, tasks, slo, backlog) in &self.rows {
            out.push_str(&format!(
                "{h:>7.1}  {traffic:>13.1}  {tasks:>7.0}  {slo:>7.3}  {backlog:>12.1}\n"
            ));
        }
        out.push('\n');
        for (name, tasks, backlog) in &self.jobs {
            out.push_str(&format!(
                "job {name:<24} tasks = {tasks:>3}  backlog = {backlog:>10.1} MB\n"
            ));
        }
        out.push('\n');
        out.push_str(&self.dashboard);
        if !self.fault_log.is_empty() {
            out.push_str("\nfault timeline:\n");
            for (hours, entry) in &self.fault_log {
                out.push_str(&format!("  {hours:>6.2} h  {entry}\n"));
            }
        }
        let [starts, stops, restarts, moves, failovers, scalings, alerts] = self.counters;
        out.push_str(&format!(
            "\nlifecycle: {starts} starts, {stops} stops, {restarts} restarts, \
             {moves} shard moves, {failovers} fail-overs, {scalings} scaling actions, {alerts} alerts\n"
        ));
        out
    }
}

/// A scenario run with its observability artifacts: the rendered summary,
/// the control-plane causal trace, and the name → id map scenario job
/// names resolve through.
#[derive(Debug, Clone)]
pub struct TracedRun {
    /// The ordinary run summary ([`run_scenario`] returns just this).
    pub summary: RunSummary,
    /// The platform's causal decision trace at the end of the run.
    pub trace: turbine::TraceBuffer,
    /// Scenario job name → platform job id.
    pub jobs: BTreeMap<String, JobId>,
}

/// Execute a scenario and collect the summary. Deterministic: the same
/// scenario always produces the same summary.
pub fn run_scenario(scenario: &Scenario) -> RunSummary {
    run_scenario_traced(scenario).summary
}

/// Execute a scenario and keep the causal trace alongside the summary
/// (the `turbinesim trace` subcommand's entry point).
pub fn run_scenario_traced(scenario: &Scenario) -> TracedRun {
    let mut rows = Vec::new();
    let (turbine, ids) = drive_scenario(scenario, report_row_observer(scenario, &mut rows));
    summarize(&turbine, ids, rows)
}

/// The report-row sampling observer every summary-producing drive shares:
/// one row per report interval plus the final minute.
pub fn report_row_observer<'a>(
    scenario: &'a Scenario,
    rows: &'a mut Vec<(f64, f64, f64, f64, f64)>,
) -> impl FnMut(&Turbine, u64) + 'a {
    let total_mins = scenario.total_mins();
    move |turbine, minute| {
        if minute % scenario.report_every_mins == 0 || minute == total_mins {
            rows.push((
                turbine.now().as_hours_f64(),
                turbine.metrics.cluster_traffic.last().unwrap_or(0.0) / 1.0e6,
                turbine.metrics.task_count.last().unwrap_or(0.0),
                turbine.metrics.slo_ok_fraction.last().unwrap_or(0.0),
                turbine.metrics.total_backlog.last().unwrap_or(0.0) / 1.0e6,
            ));
        }
    }
}

/// Fold a finished platform and its sampled rows into the rendered-run
/// bundle (shared by the front-to-back runner and the restore verb).
pub fn summarize(
    turbine: &Turbine,
    ids: BTreeMap<String, JobId>,
    rows: Vec<(f64, f64, f64, f64, f64)>,
) -> TracedRun {
    let jobs = ids
        .iter()
        .map(|(name, &id)| match turbine.job_status(id) {
            Some(status) => (
                name.clone(),
                status.running_tasks,
                status.backlog_bytes / 1.0e6,
            ),
            None => (format!("{name} (deleted)"), 0, 0.0),
        })
        .collect();
    let dashboard = turbine::fleet_health(turbine).render();
    let counters = [
        turbine.metrics.task_starts.get(),
        turbine.metrics.task_stops.get(),
        turbine.metrics.task_restarts.get(),
        turbine.metrics.shard_moves.get(),
        turbine.metrics.failovers.get(),
        turbine.metrics.scaling_actions.get(),
        turbine.metrics.alerts.get(),
    ];
    let fault_log = turbine
        .fault_injector()
        .log()
        .iter()
        .map(|(at, entry)| (at.as_hours_f64(), entry.clone()))
        .collect();
    TracedRun {
        summary: RunSummary {
            rows,
            jobs,
            counters,
            dashboard,
            fault_log,
        },
        trace: turbine.trace().clone(),
        jobs: ids,
    }
}

/// Provision a scenario's fleet and drive it minute by minute, calling
/// `observer` after each simulated minute (timeline events for that minute
/// have already fired). Returns the final platform and the name → id map.
/// This is the drive loop every observing subcommand shares: `run`/`trace`
/// sample report rows from it, `metrics` exports the ODS registry after
/// it, and `top` renders console frames inside it.
pub fn drive_scenario(
    scenario: &Scenario,
    observer: impl FnMut(&Turbine, u64),
) -> (Turbine, BTreeMap<String, JobId>) {
    let (mut turbine, ids) = provision_scenario(scenario);
    drive_scenario_minutes(
        &mut turbine,
        scenario,
        &ids,
        0,
        scenario.total_mins(),
        observer,
    );
    (turbine, ids)
}

/// Rebuild the scenario-order artifacts a resumed run needs: host ids in
/// provisioning order (the cluster reports them in creation order) and
/// the name → id map (the i-th scenario job is `JobId(i + 1)`). Both are
/// pure functions of the scenario plus the platform, so a restored
/// snapshot needs no side-channel state.
pub fn scenario_bindings(
    turbine: &Turbine,
    scenario: &Scenario,
) -> (Vec<HostId>, BTreeMap<String, JobId>) {
    let hosts = turbine.cluster.hosts();
    let ids = scenario
        .jobs
        .iter()
        .enumerate()
        .map(|(i, job)| (job.name.clone(), JobId(i as u64 + 1)))
        .collect();
    (hosts, ids)
}

/// Provision a scenario's fleet: hosts, jobs, alert rules, and the
/// pre-registered storm windows — everything up to (but not including)
/// minute 1.
pub fn provision_scenario(scenario: &Scenario) -> (Turbine, BTreeMap<String, JobId>) {
    let mut config = TurbineConfig::default();
    config.scaler_enabled = scenario.scaler_enabled;
    config.load_balancing_enabled = scenario.load_balancing;
    config.ods_enabled = scenario.ods_enabled;
    let mut turbine = Turbine::new(config);
    turbine.add_hosts(
        scenario.hosts,
        Resources::new(
            scenario.host_cpu,
            scenario.host_memory_gb * 1024.0,
            1.0e6,
            1000.0,
        ),
    );

    // Provision jobs; remember name → id.
    let mut ids: BTreeMap<String, JobId> = BTreeMap::new();
    for (i, job) in scenario.jobs.iter().enumerate() {
        let id = JobId(i as u64 + 1);
        let mut jc = JobConfig::stateless(&job.name, job.tasks, job.partitions);
        jc.max_task_count = job.max_tasks.max(job.tasks);
        jc.resiliency = job.resiliency;
        let traffic = TrafficModel::diurnal(job.rate_mbps * 1.0e6, job.diurnal, job.seed);
        if job.stateful_keys > 0.0 {
            turbine
                .provision_stateful_job(id, jc, traffic, 1.0e6, 256.0, job.stateful_keys)
                .expect("scenario job provisions");
        } else {
            turbine
                .provision_job(id, jc, traffic, 1.0e6, 256.0)
                .expect("scenario job provisions");
        }
        ids.insert(job.name.clone(), id);
    }

    // Arm the alerting engine: the platform's default per-critical-job lag
    // rules, then whatever the scenario's "alerts" section adds.
    if scenario.ods_enabled {
        turbine.install_default_alert_rules();
        turbine.install_alert_rules(scenario.alert_rules.iter().cloned());
    }

    // Pre-register storm windows on every job's traffic model (they are
    // pure functions of time, so this is equivalent to firing them live).
    for event in &scenario.events {
        if let ScenarioEvent::Storm {
            at_mins,
            multiplier,
            duration_mins,
        } = event
        {
            let window = TrafficEvent {
                start: SimTime::ZERO + Duration::from_mins(*at_mins),
                end: SimTime::ZERO + Duration::from_mins(at_mins + duration_mins),
                kind: TrafficEventKind::RampedMultiplier {
                    peak: *multiplier,
                    ramp_mins: (duration_mins / 6).max(1),
                },
            };
            for &id in ids.values() {
                turbine.with_job_traffic(id, |t| t.events.push(window));
            }
        }
    }

    (turbine, ids)
}

/// Drive minutes `after_min + 1 ..= to_min` of a scenario, firing
/// non-storm timeline events at their minutes and calling `observer`
/// after each minute. `run_for` rides the event-driven control scheduler,
/// so quiet minutes cost a handful of control events rather than a dense
/// tick grid. A restored snapshot resumes by passing its capture minute
/// as `after_min`: events at or before it already fired in the captured
/// run, so only the remainder is re-applied — the resumed drive is the
/// uninterrupted run's tail, minute for minute.
pub fn drive_scenario_minutes(
    turbine: &mut Turbine,
    scenario: &Scenario,
    ids: &BTreeMap<String, JobId>,
    after_min: u64,
    to_min: u64,
    mut observer: impl FnMut(&Turbine, u64),
) {
    let hosts = turbine.cluster.hosts();
    let mut pending: Vec<&ScenarioEvent> = scenario
        .events
        .iter()
        .filter(|e| !matches!(e, ScenarioEvent::Storm { .. }) && e.at_mins().max(1) > after_min)
        .collect();
    for minute in (after_min + 1)..=to_min {
        turbine.run_for(Duration::from_mins(1));
        while let Some(event) = pending.first().filter(|e| e.at_mins() <= minute) {
            match event {
                ScenarioEvent::FailHost { host, .. } => {
                    turbine.fail_host(hosts[*host]).expect("valid host");
                }
                ScenarioEvent::RecoverHost { host, .. } => {
                    turbine.recover_host(hosts[*host]).expect("valid host");
                }
                ScenarioEvent::OncallSet {
                    job, path, value, ..
                } => {
                    turbine
                        .oncall_set(ids[job], path, ConfigValue::Int(*value))
                        .expect("valid job");
                }
                ScenarioEvent::OncallClear { job, .. } => {
                    turbine.oncall_clear(ids[job]).expect("valid job");
                }
                ScenarioEvent::DeleteJob { job, .. } => {
                    turbine.delete_job(ids[job]).expect("valid job");
                }
                ScenarioEvent::InjectFault {
                    fault,
                    host,
                    job,
                    duration_mins,
                    ..
                } => {
                    let fault = resolve_fault(fault, *host, job.as_deref(), &hosts, ids, turbine);
                    turbine.inject_fault(fault, duration_mins.map(Duration::from_mins));
                }
                ScenarioEvent::ClearFault {
                    fault, host, job, ..
                } => {
                    let fault = resolve_fault(fault, *host, job.as_deref(), &hosts, ids, turbine);
                    turbine.clear_fault(&fault);
                }
                ScenarioEvent::Storm { .. } => unreachable!("pre-registered"),
            }
            pending.remove(0);
        }
        observer(turbine, minute);
    }
}

/// Map a validated scenario fault name (plus its addressing fields) to the
/// platform's fault type. `heartbeat_loss` targets the Turbine container on
/// the indexed host; `scribe_stall` targets the job's input category.
fn resolve_fault(
    fault: &str,
    host: Option<usize>,
    job: Option<&str>,
    hosts: &[HostId],
    ids: &BTreeMap<String, JobId>,
    turbine: &Turbine,
) -> Fault {
    match fault {
        "task_service_down" => Fault::TaskServiceDown,
        "job_store_down" => Fault::JobStoreDown,
        "syncer_crash" => Fault::SyncerCrash,
        "heartbeat_loss" => {
            let host = hosts[host.expect("validated: heartbeat_loss has a host")];
            let container = turbine
                .cluster
                .containers_on(host)
                .expect("scenario host exists")[0];
            Fault::HeartbeatLoss(container)
        }
        "scribe_stall" => {
            let id = ids[job.expect("validated: scribe_stall has a job")];
            let category = turbine
                .job_category(id)
                .expect("scenario job is provisioned")
                .to_string();
            Fault::ScribeStall(category)
        }
        other => unreachable!("validated fault name '{other}'"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Scenario;

    fn tiny() -> Scenario {
        Scenario::parse(
            r#"{
              "hosts": 3, "duration_hours": 1.0, "report_every_mins": 15,
              "jobs": [
                {"name": "a", "tasks": 2, "partitions": 16, "rate_mbps": 2.0, "seed": 1},
                {"name": "b", "tasks": 1, "partitions": 8, "rate_mbps": 0.5, "seed": 2}
              ],
              "events": [
                {"action": "fail_host", "at_mins": 20, "host": 1},
                {"action": "recover_host", "at_mins": 40, "host": 1}
              ]
            }"#,
        )
        .expect("parse")
    }

    #[test]
    fn scenario_runs_to_completion_with_reports() {
        let summary = run_scenario(&tiny());
        assert_eq!(summary.rows.len(), 4, "15-min reports over 1 h");
        assert_eq!(summary.jobs.len(), 2);
        // Both jobs running at the end despite the mid-run host failure.
        for (name, tasks, _) in &summary.jobs {
            assert!(*tasks > 0, "{name} must be running");
        }
        assert!(summary.counters[4] >= 1, "fail-over happened");
    }

    #[test]
    fn scenario_runs_are_deterministic() {
        let a = run_scenario(&tiny());
        let b = run_scenario(&tiny());
        assert_eq!(a.rows, b.rows);
        assert_eq!(a.counters, b.counters);
    }

    #[test]
    fn deleted_jobs_report_as_deleted() {
        let scenario = Scenario::parse(
            r#"{
              "hosts": 2, "duration_hours": 0.5,
              "jobs": [{"name": "doomed", "tasks": 1, "partitions": 4}],
              "events": [{"action": "delete_job", "at_mins": 10, "job": "doomed"}]
            }"#,
        )
        .expect("parse");
        let summary = run_scenario(&scenario);
        assert!(summary.jobs[0].0.contains("deleted"));
        assert_eq!(summary.jobs[0].1, 0);
    }

    #[test]
    fn fault_events_drive_the_chaos_engine() {
        let scenario = Scenario::parse(
            r#"{
              "hosts": 3, "duration_hours": 1.0, "report_every_mins": 30,
              "jobs": [{"name": "a", "tasks": 2, "partitions": 16, "rate_mbps": 1.0, "seed": 1}],
              "events": [
                {"action": "inject_fault", "at_mins": 10, "fault": "task_service_down", "duration_mins": 5},
                {"action": "inject_fault", "at_mins": 20, "fault": "heartbeat_loss", "host": 1},
                {"action": "clear_fault", "at_mins": 25, "fault": "heartbeat_loss", "host": 1},
                {"action": "inject_fault", "at_mins": 30, "fault": "scribe_stall", "job": "a", "duration_mins": 10}
              ]
            }"#,
        )
        .expect("parse");
        let summary = run_scenario(&scenario);
        // Every inject and every clear (explicit or by expiry) is logged.
        assert_eq!(summary.fault_log.len(), 6, "log: {:?}", summary.fault_log);
        assert!(summary.render().contains("fault timeline:"));
        // The job survives the whole gauntlet.
        assert!(summary.jobs[0].1 > 0);
        // Same scenario, same fault timeline.
        let again = run_scenario(&scenario);
        assert_eq!(summary.fault_log, again.fault_log);
    }

    #[test]
    fn demo_scenario_survives_end_to_end() {
        let mut demo = Scenario::demo();
        demo.duration_hours = 1.0; // keep the unit test fast
        demo.events.retain(|e| e.at_mins() <= 55);
        let summary = run_scenario(&demo);
        assert!(!summary.rows.is_empty());
        assert_eq!(summary.jobs.len(), 3);
    }
}
