//! The `turbinesim trace` subcommand: query the causal decision trace a
//! scenario run produced.
//!
//! Three modes, all operating on the same [`TracedRun`]:
//!
//! - **listing** (default): print retained trace records, optionally
//!   filtered by `--job`, `--component`, and `--from-mins`/`--to-mins`;
//! - **`--explain <job>`**: reconstruct the causal chain behind the most
//!   recent decision the control plane took about a job (fault edge →
//!   symptom → decision), root first;
//! - **`--jsonl`**: dump the retained records as JSONL for offline tools.

use crate::runner::TracedRun;
use std::fmt::Write as _;
use turbine::{TraceComponent, TraceData, TraceEvent};
use turbine_types::{Duration, SimTime};

/// Parsed arguments for `turbinesim trace`.
#[derive(Debug, Clone, Default)]
pub struct TraceQuery {
    /// Only records about this scenario job (by name).
    pub job: Option<String>,
    /// Only records from rounds of this control component.
    pub component: Option<TraceComponent>,
    /// Drop records before this many simulated minutes.
    pub from_mins: Option<f64>,
    /// Drop records after this many simulated minutes.
    pub to_mins: Option<f64>,
    /// Explain the last decision about this scenario job (by name).
    pub explain: Option<String>,
    /// Emit raw JSONL instead of the human listing.
    pub jsonl: bool,
}

impl TraceQuery {
    /// Parse the flag tail of `turbinesim trace <scenario> [flags...]`.
    pub fn parse(args: &[String]) -> Result<TraceQuery, String> {
        let mut query = TraceQuery::default();
        let mut it = args.iter();
        while let Some(flag) = it.next() {
            let mut value = |name: &str| {
                it.next()
                    .cloned()
                    .ok_or_else(|| format!("{name} needs a value"))
            };
            match flag.as_str() {
                "--job" => query.job = Some(value("--job")?),
                "--component" => {
                    let name = value("--component")?;
                    query.component = Some(TraceComponent::parse(&name).ok_or_else(|| {
                        format!("unknown component '{name}' (see `turbinesim trace --help`)")
                    })?);
                }
                "--from-mins" => {
                    query.from_mins = Some(
                        value("--from-mins")?
                            .parse()
                            .map_err(|_| "--from-mins needs a number of minutes".to_string())?,
                    );
                }
                "--to-mins" => {
                    query.to_mins = Some(
                        value("--to-mins")?
                            .parse()
                            .map_err(|_| "--to-mins needs a number of minutes".to_string())?,
                    );
                }
                "--explain" => query.explain = Some(value("--explain")?),
                "--jsonl" => query.jsonl = true,
                other => return Err(format!("unknown trace flag '{other}'")),
            }
        }
        Ok(query)
    }
}

/// Execute a parsed trace query against a finished run.
pub fn trace_report(run: &TracedRun, query: &TraceQuery) -> Result<String, String> {
    if let Some(job) = &query.explain {
        return explain(run, job);
    }
    if query.jsonl {
        return Ok(run.trace.to_jsonl());
    }
    format_events(run, query)
}

/// Resolve a scenario job name, with a helpful error listing valid names.
fn resolve_job(run: &TracedRun, name: &str) -> Result<turbine_types::JobId, String> {
    run.jobs.get(name).copied().ok_or_else(|| {
        let known: Vec<&str> = run.jobs.keys().map(String::as_str).collect();
        format!("unknown job '{name}' (scenario jobs: {})", known.join(", "))
    })
}

/// Human listing of retained records matching the query filters.
fn format_events(run: &TracedRun, query: &TraceQuery) -> Result<String, String> {
    let job = match &query.job {
        Some(name) => Some(resolve_job(run, name)?),
        None => None,
    };
    let from = query
        .from_mins
        .map(|m| SimTime::ZERO + Duration::from_secs_f64(m * 60.0));
    let to = query
        .to_mins
        .map(|m| SimTime::ZERO + Duration::from_secs_f64(m * 60.0));

    // Attribute records to components positionally: the trace is a single
    // ordered stream where every record after a round-start (until the
    // next one) was emitted inside that round. Fault edges are the chaos
    // engine's regardless of position (they can land outside any round).
    let mut current: Option<TraceComponent> = None;
    let mut out = String::new();
    let mut shown = 0usize;
    for event in run.trace.events() {
        let component = match &event.data {
            TraceData::RoundStart { component } => {
                current = Some(*component);
                current
            }
            TraceData::FaultEdge { .. } => Some(TraceComponent::ChaosEngine),
            _ => current,
        };
        if query.job.is_some() && event.data.job() != job {
            continue;
        }
        if query.component.is_some() && component != query.component {
            continue;
        }
        if from.is_some_and(|f| event.at < f) || to.is_some_and(|t| event.at > t) {
            continue;
        }
        let _ = writeln!(out, "{}", format_line(event, component));
        shown += 1;
    }
    let _ = writeln!(
        out,
        "{shown} of {} retained records shown ({} recorded, {} evicted)",
        run.trace.len(),
        run.trace.total_recorded(),
        run.trace.evicted(),
    );
    Ok(out)
}

/// One listing line: id, sim-time, owning component, cause link, summary.
fn format_line(event: &TraceEvent, component: Option<TraceComponent>) -> String {
    let component = component.map_or("-", TraceComponent::name);
    let cause = event
        .cause
        .map_or_else(|| "root".to_string(), |c| c.to_string());
    format!(
        "{:>6} [{}] {:<16} {:<6} {}",
        event.id.to_string(),
        event.at,
        component,
        cause,
        event.data.summary(),
    )
}

/// Reconstruct and render the causal chain behind the most recent decision
/// about `job`, root cause first.
fn explain(run: &TracedRun, job: &str) -> Result<String, String> {
    let id = resolve_job(run, job)?;
    let Some(decision) = run.trace.last_decision_for(id) else {
        return Ok(format!(
            "no retained decision about job '{job}' (is tracing enabled? did the run reach it?)\n"
        ));
    };
    let mut chain = run.trace.chain(decision.id);
    chain.reverse(); // root first
    let mut out = String::new();
    let _ = writeln!(
        out,
        "last decision about job '{job}': {} at {}",
        decision.data.summary(),
        decision.at,
    );
    let _ = writeln!(out, "causal chain ({} hops):", chain.len());
    for (depth, event) in chain.iter().enumerate() {
        let indent = "  ".repeat(depth);
        let arrow = if depth == 0 { "" } else { "└─ " };
        let _ = writeln!(
            out,
            "  {indent}{arrow}{} [{}] {}",
            event.id,
            event.at,
            event.data.summary(),
        );
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_scenario_traced;
    use crate::scenario::Scenario;

    fn stalled() -> TracedRun {
        let scenario = Scenario::parse(
            r#"{
              "hosts": 3, "duration_hours": 1.5, "report_every_mins": 30,
              "jobs": [{"name": "pipeline", "tasks": 2, "partitions": 16,
                        "rate_mbps": 2.0, "max_tasks": 8, "seed": 7}],
              "events": [
                {"action": "inject_fault", "at_mins": 10, "fault": "scribe_stall",
                 "job": "pipeline", "duration_mins": 30}
              ]
            }"#,
        )
        .expect("parse");
        run_scenario_traced(&scenario)
    }

    #[test]
    fn parse_accepts_all_flags_and_rejects_junk() {
        let args: Vec<String> = [
            "--job",
            "a",
            "--component",
            "auto_scaler",
            "--from-mins",
            "5",
            "--to-mins",
            "90",
            "--jsonl",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let q = TraceQuery::parse(&args).expect("parse");
        assert_eq!(q.job.as_deref(), Some("a"));
        assert_eq!(q.component, Some(TraceComponent::AutoScaler));
        assert_eq!(q.from_mins, Some(5.0));
        assert_eq!(q.to_mins, Some(90.0));
        assert!(q.jsonl);
        assert!(TraceQuery::parse(&["--bogus".to_string()]).is_err());
        assert!(TraceQuery::parse(&["--component".to_string(), "nope".to_string()]).is_err());
        assert!(TraceQuery::parse(&["--job".to_string()]).is_err());
    }

    #[test]
    fn listing_filters_by_job_and_time() {
        let run = stalled();
        let all = trace_report(&run, &TraceQuery::default()).expect("report");
        assert!(all.contains("retained records shown"), "{all}");

        let mut query = TraceQuery::default();
        query.job = Some("pipeline".to_string());
        query.from_mins = Some(9.0);
        let filtered = trace_report(&run, &query).expect("report");
        assert!(filtered.len() <= all.len());

        query.job = Some("missing".to_string());
        let err = trace_report(&run, &query).expect_err("unknown job");
        assert!(err.contains("unknown job"), "{err}");
    }

    #[test]
    fn jsonl_mode_emits_one_json_object_per_line() {
        let run = stalled();
        let mut query = TraceQuery::default();
        query.jsonl = true;
        let jsonl = trace_report(&run, &query).expect("report");
        assert!(!jsonl.is_empty());
        for line in jsonl.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        }
    }

    #[test]
    fn explain_reconstructs_a_causal_chain() {
        let run = stalled();
        let mut query = TraceQuery::default();
        query.explain = Some("pipeline".to_string());
        let explained = trace_report(&run, &query).expect("report");
        assert!(
            explained.contains("last decision about job 'pipeline'"),
            "{explained}"
        );
        assert!(explained.contains("causal chain"), "{explained}");

        query.explain = Some("missing".to_string());
        let err = trace_report(&run, &query).expect_err("unknown job");
        assert!(err.contains("unknown job"), "{err}");
    }
}
