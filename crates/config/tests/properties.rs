//! Property-based tests for the configuration model: parser/printer
//! round-trip and the algebraic laws of Algorithm 1 layering.

use proptest::prelude::*;
use std::collections::BTreeMap;
use turbine_config::{layer_configs, parse, to_text, ConfigValue};

/// Strategy generating arbitrary configuration values up to a bounded
/// depth/size, covering every variant.
fn arb_value() -> impl Strategy<Value = ConfigValue> {
    let leaf = prop_oneof![
        Just(ConfigValue::Null),
        any::<bool>().prop_map(ConfigValue::Bool),
        any::<i64>().prop_map(ConfigValue::Int),
        // Finite floats only: the printer rejects NaN/inf by design.
        any::<f64>()
            .prop_filter("finite", |f| f.is_finite())
            .prop_map(ConfigValue::Float),
        "[a-zA-Z0-9 _./\\-\"\\\\\u{e9}\u{4f60}]{0,12}".prop_map(ConfigValue::Str),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..4).prop_map(ConfigValue::Array),
            prop::collection::btree_map("[a-z]{1,6}", inner, 0..4).prop_map(ConfigValue::Map),
        ]
    })
}

/// Maps-only strategy (layering operates on map roots in practice).
fn arb_map() -> impl Strategy<Value = ConfigValue> {
    prop::collection::btree_map("[a-z]{1,4}", arb_value(), 0..5).prop_map(ConfigValue::Map)
}

/// Structural equality that treats `Float(x)` and `Int(x)` as distinct but
/// compares floats bit-exactly (so -0.0 vs 0.0 round-trips are visible).
fn eq_bits(a: &ConfigValue, b: &ConfigValue) -> bool {
    match (a, b) {
        (ConfigValue::Float(x), ConfigValue::Float(y)) => x.to_bits() == y.to_bits(),
        (ConfigValue::Array(x), ConfigValue::Array(y)) => {
            x.len() == y.len() && x.iter().zip(y).all(|(a, b)| eq_bits(a, b))
        }
        (ConfigValue::Map(x), ConfigValue::Map(y)) => {
            x.len() == y.len()
                && x.iter()
                    .zip(y)
                    .all(|((ka, va), (kb, vb))| ka == kb && eq_bits(va, vb))
        }
        _ => a == b,
    }
}

proptest! {
    /// print ∘ parse is the identity on the value model.
    #[test]
    fn text_roundtrip(v in arb_value()) {
        let text = to_text(&v);
        let reparsed = parse(&text).expect("printer output must parse");
        prop_assert!(eq_bits(&reparsed, &v), "{text}");
    }

    /// Printing is deterministic: equal values print identically.
    #[test]
    fn printing_is_deterministic(v in arb_value()) {
        prop_assert_eq!(to_text(&v), to_text(&v.clone()));
    }

    /// Layering a config over itself changes nothing.
    #[test]
    fn layering_is_idempotent(v in arb_map()) {
        prop_assert_eq!(layer_configs(&v, &v), v);
    }

    /// The empty map is a two-sided identity for map-rooted configs.
    #[test]
    fn empty_map_is_identity(v in arb_map()) {
        let empty = ConfigValue::empty_map();
        prop_assert_eq!(layer_configs(&v, &empty), v.clone());
        prop_assert_eq!(layer_configs(&empty, &v), v);
    }

    /// Right precedence: every key present in the top layer is present in
    /// the merged result, and scalar top values appear verbatim.
    #[test]
    fn top_layer_wins(bottom in arb_map(), top in arb_map()) {
        let merged = layer_configs(&bottom, &top);
        let merged_map = merged.as_map().expect("merging maps yields a map");
        let top_map = top.as_map().expect("strategy yields maps");
        for (k, tv) in top_map {
            let mv = merged_map.get(k).expect("top key must survive merge");
            if !tv.is_map() {
                prop_assert_eq!(mv, tv);
            }
        }
    }

    /// Keys only in the bottom layer survive unchanged.
    #[test]
    fn bottom_only_keys_survive(bottom in arb_map(), top in arb_map()) {
        let merged = layer_configs(&bottom, &top);
        let merged_map = merged.as_map().expect("map");
        let top_map = top.as_map().expect("map");
        for (k, bv) in bottom.as_map().expect("map") {
            if !top_map.contains_key(k) {
                prop_assert_eq!(merged_map.get(k).expect("bottom-only key"), bv);
            }
        }
    }

    /// Merging never invents keys: merged keyset == union of inputs.
    #[test]
    fn merge_keyset_is_union(bottom in arb_map(), top in arb_map()) {
        let merged = layer_configs(&bottom, &top);
        let mut expected: BTreeMap<&String, ()> = BTreeMap::new();
        for k in bottom.as_map().expect("map").keys() {
            expected.insert(k, ());
        }
        for k in top.as_map().expect("map").keys() {
            expected.insert(k, ());
        }
        let merged_keys: Vec<&String> = merged.as_map().expect("map").keys().collect();
        let expected_keys: Vec<&String> = expected.keys().copied().collect();
        prop_assert_eq!(merged_keys, expected_keys);
    }
}
