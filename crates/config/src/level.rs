//! Configuration precedence levels (paper Table I).
//!
//! The Expected Job Table holds four configuration levels; each subsequent
//! level takes precedence over all the preceding ones. The hierarchical
//! design isolates updates between components: the Provision Service and the
//! Auto Scaler modify their own levels without knowing about each other, and
//! oncall overrides always win so a broken automation service cannot
//! clobber a human mitigation.

use std::fmt;

/// One level of the Expected Job Configuration, lowest precedence first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ConfigLevel {
    /// Common settings: package name, version, checkpoint directory.
    Base,
    /// Modified when users update applications (Provision Service).
    Provisioner,
    /// Updated by the Auto Scaler when it adjusts resource allocation.
    Scaler,
    /// Highest precedence; used only for human intervention during an
    /// ongoing service degradation.
    Oncall,
}

impl ConfigLevel {
    /// All levels in precedence order (lowest first) — the order in which
    /// [`crate::merge::layer_all`] must fold them.
    pub const PRECEDENCE: [ConfigLevel; 4] = [
        ConfigLevel::Base,
        ConfigLevel::Provisioner,
        ConfigLevel::Scaler,
        ConfigLevel::Oncall,
    ];

    /// Stable index of this level within [`Self::PRECEDENCE`].
    pub fn index(self) -> usize {
        match self {
            ConfigLevel::Base => 0,
            ConfigLevel::Provisioner => 1,
            ConfigLevel::Scaler => 2,
            ConfigLevel::Oncall => 3,
        }
    }
}

impl fmt::Display for ConfigLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ConfigLevel::Base => "base",
            ConfigLevel::Provisioner => "provisioner",
            ConfigLevel::Scaler => "scaler",
            ConfigLevel::Oncall => "oncall",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn precedence_order_is_base_to_oncall() {
        assert!(ConfigLevel::Base < ConfigLevel::Provisioner);
        assert!(ConfigLevel::Provisioner < ConfigLevel::Scaler);
        assert!(ConfigLevel::Scaler < ConfigLevel::Oncall);
    }

    #[test]
    fn index_matches_precedence_array() {
        for (i, level) in ConfigLevel::PRECEDENCE.iter().enumerate() {
            assert_eq!(level.index(), i);
        }
    }
}
