//! The JSON-like configuration value model.
//!
//! Turbine serializes Thrift-typed configurations to JSON and layers them
//! with a generic merge (paper §III-A). [`ConfigValue`] is that JSON model.
//! Maps are ordered (`BTreeMap`) so serialization — and therefore the WAL
//! and all test expectations — is deterministic.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON-like configuration value.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum ConfigValue {
    /// JSON `null`.
    #[default]
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON integer (Turbine configs use integers for counts and versions).
    Int(i64),
    /// JSON floating-point number.
    Float(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Array(Vec<ConfigValue>),
    /// JSON object with deterministic (sorted) key order.
    Map(BTreeMap<String, ConfigValue>),
}

impl ConfigValue {
    /// An empty map — the starting point for building configs.
    pub fn empty_map() -> ConfigValue {
        ConfigValue::Map(BTreeMap::new())
    }

    /// True if this value is a map (the only values Algorithm 1 recurses
    /// into).
    pub fn is_map(&self) -> bool {
        matches!(self, ConfigValue::Map(_))
    }

    /// Borrow as a map, if it is one.
    pub fn as_map(&self) -> Option<&BTreeMap<String, ConfigValue>> {
        match self {
            ConfigValue::Map(m) => Some(m),
            _ => None,
        }
    }

    /// Mutably borrow as a map, if it is one.
    pub fn as_map_mut(&mut self) -> Option<&mut BTreeMap<String, ConfigValue>> {
        match self {
            ConfigValue::Map(m) => Some(m),
            _ => None,
        }
    }

    /// Borrow as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            ConfigValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// As an integer. `Float` values that are exactly integral convert too,
    /// since layered configs may round-trip counts through floats.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            ConfigValue::Int(i) => Some(*i),
            ConfigValue::Float(f) if f.fract() == 0.0 && f.is_finite() => Some(*f as i64),
            _ => None,
        }
    }

    /// As a float (integers widen).
    pub fn as_float(&self) -> Option<f64> {
        match self {
            ConfigValue::Float(f) => Some(*f),
            ConfigValue::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// As a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            ConfigValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Borrow as an array, if it is one.
    pub fn as_array(&self) -> Option<&[ConfigValue]> {
        match self {
            ConfigValue::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Value at `key`, if this is a map containing it.
    pub fn get(&self, key: &str) -> Option<&ConfigValue> {
        self.as_map().and_then(|m| m.get(key))
    }

    /// Value at a `.`-separated path, e.g. `"package.version"`.
    pub fn get_path(&self, path: &str) -> Option<&ConfigValue> {
        let mut cur = self;
        for seg in path.split('.') {
            cur = cur.get(seg)?;
        }
        Some(cur)
    }

    /// Insert `value` at `key`, converting `self` to a map if it is `Null`.
    /// Panics if `self` is a non-map, non-null scalar: that indicates a
    /// schema bug, not a runtime condition.
    pub fn insert(&mut self, key: impl Into<String>, value: ConfigValue) -> &mut Self {
        if matches!(self, ConfigValue::Null) {
            *self = ConfigValue::empty_map();
        }
        self.as_map_mut()
            .expect("insert target must be a map or null")
            .insert(key.into(), value);
        self
    }

    /// Insert `value` at a `.`-separated path, creating intermediate maps.
    /// Existing non-map intermediates are replaced by maps (mirroring how a
    /// higher layer overrides a scalar with a subtree).
    pub fn insert_path(&mut self, path: &str, value: ConfigValue) {
        let mut cur = self;
        let segs: Vec<&str> = path.split('.').collect();
        for (i, seg) in segs.iter().enumerate() {
            if matches!(cur, ConfigValue::Null) || !cur.is_map() {
                *cur = ConfigValue::empty_map();
            }
            let map = cur.as_map_mut().expect("just ensured map");
            if i + 1 == segs.len() {
                map.insert((*seg).to_string(), value);
                return;
            }
            cur = map
                .entry((*seg).to_string())
                .or_insert_with(ConfigValue::empty_map);
        }
    }

    /// Number of entries if a map or array; 0 otherwise.
    pub fn len(&self) -> usize {
        match self {
            ConfigValue::Map(m) => m.len(),
            ConfigValue::Array(a) => a.len(),
            _ => 0,
        }
    }

    /// True if a map/array with no entries, or any scalar.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl From<bool> for ConfigValue {
    fn from(v: bool) -> Self {
        ConfigValue::Bool(v)
    }
}
impl From<i64> for ConfigValue {
    fn from(v: i64) -> Self {
        ConfigValue::Int(v)
    }
}
impl From<u32> for ConfigValue {
    fn from(v: u32) -> Self {
        ConfigValue::Int(v as i64)
    }
}
impl From<f64> for ConfigValue {
    fn from(v: f64) -> Self {
        ConfigValue::Float(v)
    }
}
impl From<&str> for ConfigValue {
    fn from(v: &str) -> Self {
        ConfigValue::Str(v.to_string())
    }
}
impl From<String> for ConfigValue {
    fn from(v: String) -> Self {
        ConfigValue::Str(v)
    }
}

impl fmt::Display for ConfigValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&crate::text::to_text(self))
    }
}

impl turbine_types::Snap for ConfigValue {
    fn snap(&self, w: &mut turbine_types::SnapWriter) {
        match self {
            ConfigValue::Null => w.u8(0),
            ConfigValue::Bool(b) => {
                w.u8(1);
                w.put(b);
            }
            ConfigValue::Int(i) => {
                w.u8(2);
                w.put(i);
            }
            ConfigValue::Float(f) => {
                w.u8(3);
                w.put(f);
            }
            ConfigValue::Str(s) => {
                w.u8(4);
                w.put(s);
            }
            ConfigValue::Array(items) => {
                w.u8(5);
                w.put(items);
            }
            ConfigValue::Map(map) => {
                w.u8(6);
                w.put(map);
            }
        }
    }

    fn unsnap(r: &mut turbine_types::SnapReader<'_>) -> Result<Self, turbine_types::SnapError> {
        match r.u8("ConfigValue.tag")? {
            0 => Ok(ConfigValue::Null),
            1 => Ok(ConfigValue::Bool(r.get()?)),
            2 => Ok(ConfigValue::Int(r.get()?)),
            3 => Ok(ConfigValue::Float(r.get()?)),
            4 => Ok(ConfigValue::Str(r.get()?)),
            5 => Ok(ConfigValue::Array(r.get()?)),
            6 => Ok(ConfigValue::Map(r.get()?)),
            tag => Err(turbine_types::SnapError::Tag("ConfigValue", tag as u64)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_reject_wrong_types() {
        assert_eq!(ConfigValue::Int(3).as_str(), None);
        assert_eq!(ConfigValue::Str("x".into()).as_int(), None);
        assert_eq!(ConfigValue::Bool(true).as_float(), None);
        assert_eq!(ConfigValue::Null.get("k"), None);
    }

    #[test]
    fn integral_float_converts_to_int() {
        assert_eq!(ConfigValue::Float(4.0).as_int(), Some(4));
        assert_eq!(ConfigValue::Float(4.5).as_int(), None);
        assert_eq!(ConfigValue::Float(f64::INFINITY).as_int(), None);
    }

    #[test]
    fn int_widens_to_float() {
        assert_eq!(ConfigValue::Int(4).as_float(), Some(4.0));
    }

    #[test]
    fn path_get_and_insert() {
        let mut v = ConfigValue::empty_map();
        v.insert_path("package.version", ConfigValue::Int(7));
        v.insert_path("package.name", "scuba_tailer".into());
        assert_eq!(
            v.get_path("package.version").and_then(|x| x.as_int()),
            Some(7)
        );
        assert_eq!(
            v.get_path("package.name").and_then(|x| x.as_str()),
            Some("scuba_tailer")
        );
        assert_eq!(v.get_path("package.missing"), None);
        assert_eq!(v.get_path("missing.deep"), None);
    }

    #[test]
    fn insert_path_replaces_scalar_intermediates() {
        let mut v = ConfigValue::empty_map();
        v.insert("a", ConfigValue::Int(1));
        v.insert_path("a.b", ConfigValue::Int(2));
        assert_eq!(v.get_path("a.b").and_then(|x| x.as_int()), Some(2));
    }

    #[test]
    fn insert_promotes_null_to_map() {
        let mut v = ConfigValue::Null;
        v.insert("k", ConfigValue::Bool(true));
        assert_eq!(v.get("k").and_then(|x| x.as_bool()), Some(true));
    }

    #[test]
    fn len_counts_entries() {
        let mut v = ConfigValue::empty_map();
        assert!(v.is_empty());
        v.insert("a", 1i64.into());
        v.insert("b", 2i64.into());
        assert_eq!(v.len(), 2);
        assert_eq!(ConfigValue::Array(vec![ConfigValue::Null]).len(), 1);
        assert_eq!(ConfigValue::Int(5).len(), 0);
    }
}
