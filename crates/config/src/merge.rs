//! Config layering — the paper's **Algorithm 1** (`layerConfigs`).
//!
//! Multiple configurations are layered over each other by recursively
//! traversing nested JSON structure while overriding values of the bottom
//! layer with the top layer. This is what lets the Provision Service, the
//! Auto Scaler, and oncall operators update the *same* job concurrently
//! without knowing about each other: each writes its own level, and the
//! merged view is deterministic.
//!
//! One clarification relative to the paper's pseudocode: Algorithm 1
//! recurses whenever the *top* value is a map and the key exists in the
//! bottom; if the bottom value at that key is a scalar the recursion would
//! be ill-typed. We recurse only when **both** sides are maps and override
//! otherwise, which is the standard JSON-merge behaviour the pseudocode
//! abbreviates.
//!
//! Properties (enforced by property tests):
//! * right precedence — any scalar present in the top layer wins;
//! * idempotence — `layer(c, c) == c`;
//! * identity — layering an empty map on top (or below) changes nothing;
//! * left-fold composition — `layer_all` equals repeated `layer_configs`
//!   in precedence order. (The merge is deliberately *not* associative:
//!   a scalar override wipes a subtree, so order of application matters —
//!   which is exactly why Turbine fixes the precedence order
//!   Base < Provisioner < Scaler < Oncall.)

use crate::value::ConfigValue;

/// Layer `top` over `bottom` (Algorithm 1). Returns the merged config;
/// neither input is modified.
pub fn layer_configs(bottom: &ConfigValue, top: &ConfigValue) -> ConfigValue {
    match (bottom, top) {
        (ConfigValue::Map(bottom_map), ConfigValue::Map(top_map)) => {
            let mut layered = bottom_map.clone();
            for (key, top_value) in top_map {
                match (bottom_map.get(key), top_value) {
                    // Both sides are maps: recurse, per Algorithm 1 line 5.
                    (Some(bottom_value @ ConfigValue::Map(_)), ConfigValue::Map(_)) => {
                        layered.insert(key.clone(), layer_configs(bottom_value, top_value));
                    }
                    // Otherwise the top layer overrides (line 8).
                    _ => {
                        layered.insert(key.clone(), top_value.clone());
                    }
                }
            }
            ConfigValue::Map(layered)
        }
        // A non-map top layer replaces the bottom wholesale.
        _ => top.clone(),
    }
}

/// Fold a precedence-ordered slice of layers (lowest first) into one merged
/// config. An empty slice yields an empty map.
pub fn layer_all(layers: &[&ConfigValue]) -> ConfigValue {
    let mut merged = ConfigValue::empty_map();
    for layer in layers {
        merged = layer_configs(&merged, layer);
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::text::parse;

    fn v(s: &str) -> ConfigValue {
        parse(s).expect("test literal must parse")
    }

    #[test]
    fn top_scalar_overrides_bottom_scalar() {
        let merged = layer_configs(&v(r#"{"n": 10}"#), &v(r#"{"n": 15}"#));
        assert_eq!(merged, v(r#"{"n": 15}"#));
    }

    #[test]
    fn nested_maps_merge_recursively() {
        let bottom = v(r#"{"package": {"name": "tailer", "version": 1}, "tasks": 4}"#);
        let top = v(r#"{"package": {"version": 2}}"#);
        let merged = layer_configs(&bottom, &top);
        assert_eq!(
            merged,
            v(r#"{"package": {"name": "tailer", "version": 2}, "tasks": 4}"#)
        );
    }

    #[test]
    fn top_scalar_wipes_bottom_subtree() {
        let merged = layer_configs(&v(r#"{"k": {"x": 1}}"#), &v(r#"{"k": 2}"#));
        assert_eq!(merged, v(r#"{"k": 2}"#));
    }

    #[test]
    fn top_map_over_bottom_scalar_overrides_wholesale() {
        let merged = layer_configs(&v(r#"{"k": 2}"#), &v(r#"{"k": {"x": 1}}"#));
        assert_eq!(merged, v(r#"{"k": {"x": 1}}"#));
    }

    #[test]
    fn arrays_are_replaced_not_merged() {
        let merged = layer_configs(&v(r#"{"args": [1, 2, 3]}"#), &v(r#"{"args": [9]}"#));
        assert_eq!(merged, v(r#"{"args": [9]}"#));
    }

    #[test]
    fn keys_only_in_bottom_survive() {
        let merged = layer_configs(&v(r#"{"a": 1, "b": 2}"#), &v(r#"{"b": 3}"#));
        assert_eq!(merged, v(r#"{"a": 1, "b": 3}"#));
    }

    #[test]
    fn empty_top_is_identity() {
        let bottom = v(r#"{"a": {"b": [1, {"c": null}]}}"#);
        assert_eq!(layer_configs(&bottom, &ConfigValue::empty_map()), bottom);
    }

    #[test]
    fn layer_all_respects_precedence_order() {
        // Mirrors the paper's example: a job running 10 tasks; the Auto
        // Scaler asks for 15, Oncall asks for 30. Oncall wins because its
        // level has the highest precedence, regardless of wall-clock order.
        let base = v(r#"{"task_count": 10, "package": {"name": "tailer"}}"#);
        let scaler = v(r#"{"task_count": 15}"#);
        let oncall = v(r#"{"task_count": 30}"#);
        let merged = layer_all(&[&base, &scaler, &oncall]);
        assert_eq!(
            merged.get_path("task_count").and_then(|x| x.as_int()),
            Some(30)
        );
        assert_eq!(
            merged.get_path("package.name").and_then(|x| x.as_str()),
            Some("tailer")
        );
    }

    #[test]
    fn layer_all_of_nothing_is_empty_map() {
        assert_eq!(layer_all(&[]), ConfigValue::empty_map());
    }

    #[test]
    fn merge_is_not_associative_by_design() {
        // Documents why precedence order matters: scalar overrides wipe
        // subtrees, so ((a ⊕ b) ⊕ c) != (a ⊕ (b ⊕ c)) in general.
        let a = v(r#"{"k": {"x": 1}}"#);
        let b = v(r#"{"k": 2}"#);
        let c = v(r#"{"k": {"y": 3}}"#);
        let left = layer_configs(&layer_configs(&a, &b), &c);
        let right = layer_configs(&a, &layer_configs(&b, &c));
        assert_eq!(left, v(r#"{"k": {"y": 3}}"#));
        assert_eq!(right, v(r#"{"k": {"x": 1, "y": 3}}"#));
        assert_ne!(left, right);
    }
}
