//! The typed job configuration schema.
//!
//! Production Turbine enforces compile-time type checking of configurations
//! with Thrift and then serializes to JSON for layering (paper §III-A).
//! [`JobConfig`] plays the Thrift role here: a statically typed view with
//! lossless conversion to/from the [`ConfigValue`] JSON model, plus the
//! validation checks a query must pass before provisioning.

use crate::value::ConfigValue;
use std::fmt;
use turbine_types::{Priority, Resources};

/// Name and version of the binary package a job runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackageSpec {
    /// Package name, e.g. `"scribe_tailer"`.
    pub name: String,
    /// Monotonically increasing release version.
    pub version: u64,
}

/// How per-task memory limits are enforced (paper §V-A): the detection
/// path for OOM symptoms differs per mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MemoryEnforcement {
    /// cgroup limit; OOM stats are preserved after the kill.
    Cgroup,
    /// JVM `-Xmx`; the JVM posts OOM metrics before killing the task.
    Jvm,
    /// No hard enforcement; usage is compared against a soft limit.
    #[default]
    SoftLimit,
}

impl MemoryEnforcement {
    fn as_str(self) -> &'static str {
        match self {
            MemoryEnforcement::Cgroup => "cgroup",
            MemoryEnforcement::Jvm => "jvm",
            MemoryEnforcement::SoftLimit => "soft_limit",
        }
    }

    fn from_str(s: &str) -> Option<Self> {
        match s {
            "cgroup" => Some(MemoryEnforcement::Cgroup),
            "jvm" => Some(MemoryEnforcement::Jvm),
            "soft_limit" => Some(MemoryEnforcement::SoftLimit),
            _ => None,
        }
    }
}

/// Per-job resiliency class: how aggressively the platform defends the
/// job's availability when containers fail. Tiers trade standby capacity
/// for recovery speed — `Critical` jobs keep a warm standby on a distinct
/// host and fail over on a fast path that skips the full sync round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum ResiliencyClass {
    /// No recovery-time guarantee; restarts ride the normal rebalance.
    BestEffort,
    /// The paper's default: fail-over after the 60 s interval plus a
    /// restart delay, through the standard sync path.
    #[default]
    Standard,
    /// Warm standby on a distinct host; heartbeat loss promotes it via the
    /// fast path (no full State Syncer round, no restart delay).
    Critical,
}

impl ResiliencyClass {
    /// Canonical serialized name of the class.
    pub fn as_str(self) -> &'static str {
        match self {
            ResiliencyClass::BestEffort => "best_effort",
            ResiliencyClass::Standard => "standard",
            ResiliencyClass::Critical => "critical",
        }
    }

    /// Parse a canonical class name; `None` for unknown strings (the
    /// `Option` return is the point — callers branch, they don't want a
    /// `FromStr` error type).
    #[allow(clippy::should_implement_trait)]
    pub fn from_str(s: &str) -> Option<Self> {
        match s {
            "best_effort" => Some(ResiliencyClass::BestEffort),
            "standard" => Some(ResiliencyClass::Standard),
            "critical" => Some(ResiliencyClass::Critical),
            _ => None,
        }
    }

    /// All classes, in tier order (for dashboards and SLO reports).
    pub const ALL: [ResiliencyClass; 3] = [
        ResiliencyClass::BestEffort,
        ResiliencyClass::Standard,
        ResiliencyClass::Critical,
    ];
}

/// Fully resolved configuration of one streaming job: everything the Task
/// Service needs to expand the job into task specs, and everything the Auto
/// Scaler needs to reason about its resources.
#[derive(Debug, Clone, PartialEq)]
pub struct JobConfig {
    /// Binary package to run.
    pub package: PackageSpec,
    /// Command-line argument template. The Task Service substitutes
    /// `{index}`, `{count}`, `{category}`, and `{checkpoint_dir}` per task
    /// when expanding the job into task specs.
    pub args: Vec<String>,
    /// Number of parallel tasks (the job's degree of parallelism).
    pub task_count: u32,
    /// Worker threads per task (`k` in the paper's Eq. 2).
    pub threads_per_task: u32,
    /// Resources reserved for each task.
    pub task_resources: Resources,
    /// Directory where tasks persist checkpoints.
    pub checkpoint_dir: String,
    /// Scribe category the job consumes.
    pub input_category: String,
    /// Number of partitions in the input category. Each task reads a
    /// disjoint subset, so `task_count <= input_partitions`.
    pub input_partitions: u32,
    /// Whether the job maintains application state beyond checkpoints
    /// (aggregations, joins) — changes the complex-sync protocol and the
    /// scaler's memory/disk estimation.
    pub stateful: bool,
    /// Business priority (Capacity Manager ordering).
    pub priority: Priority,
    /// SLO threshold on `time_lagged`, in seconds (e.g. the 90-second
    /// end-to-end guarantee common at Facebook).
    pub slo_lag_secs: f64,
    /// Memory enforcement mode.
    pub memory_enforcement: MemoryEnforcement,
    /// Upper limit on `task_count` enforced against runaway scaling (the
    /// paper's default is 32 for unprivileged Scuba tailers).
    pub max_task_count: u32,
    /// Resiliency tier: how fast the platform must recover the job when
    /// its container fails (warm standby + fast-path fail-over for
    /// `Critical`).
    pub resiliency: ResiliencyClass,
}

impl JobConfig {
    /// A minimal valid stateless job, handy for tests and examples.
    pub fn stateless(name: &str, task_count: u32, input_partitions: u32) -> JobConfig {
        JobConfig {
            package: PackageSpec {
                name: name.to_string(),
                version: 1,
            },
            args: vec![
                "--task-index={index}".to_string(),
                "--task-count={count}".to_string(),
                "--category={category}".to_string(),
            ],
            task_count,
            threads_per_task: 1,
            task_resources: Resources::cpu_mem(1.0, 800.0),
            checkpoint_dir: format!("/checkpoints/{name}"),
            input_category: format!("{name}_input"),
            input_partitions,
            stateful: false,
            priority: Priority::Normal,
            slo_lag_secs: 90.0,
            memory_enforcement: MemoryEnforcement::SoftLimit,
            max_task_count: 32,
            resiliency: ResiliencyClass::Standard,
        }
    }

    /// Validation checks performed before a job is provisioned. Returns the
    /// first violation found.
    pub fn validate(&self) -> Result<(), ValidationError> {
        if self.package.name.is_empty() {
            return Err(ValidationError::new("package.name must be non-empty"));
        }
        if self.task_count == 0 {
            return Err(ValidationError::new("task_count must be at least 1"));
        }
        if self.threads_per_task == 0 {
            return Err(ValidationError::new("threads_per_task must be at least 1"));
        }
        if self.input_partitions == 0 {
            return Err(ValidationError::new("input_partitions must be at least 1"));
        }
        if self.task_count > self.input_partitions {
            return Err(ValidationError::new(
                "task_count cannot exceed input_partitions: each task reads a disjoint, non-empty partition subset",
            ));
        }
        if self.task_count > self.max_task_count {
            return Err(ValidationError::new("task_count exceeds max_task_count"));
        }
        if !self.task_resources.is_non_negative() || self.task_resources.cpu <= 0.0 {
            return Err(ValidationError::new(
                "task_resources must be non-negative with positive cpu",
            ));
        }
        if self.slo_lag_secs <= 0.0 || self.slo_lag_secs.is_nan() {
            return Err(ValidationError::new("slo_lag_secs must be positive"));
        }
        Ok(())
    }

    /// Serialize to the JSON model. The inverse of [`JobConfig::from_value`].
    pub fn to_value(&self) -> ConfigValue {
        let mut v = ConfigValue::empty_map();
        v.insert_path("package.name", self.package.name.as_str().into());
        v.insert_path(
            "package.version",
            ConfigValue::Int(self.package.version as i64),
        );
        v.insert(
            "args",
            ConfigValue::Array(self.args.iter().map(|a| a.as_str().into()).collect()),
        );
        v.insert("task_count", self.task_count.into());
        v.insert("threads_per_task", self.threads_per_task.into());
        v.insert_path("resources.cpu", self.task_resources.cpu.into());
        v.insert_path("resources.memory_mb", self.task_resources.memory_mb.into());
        v.insert_path("resources.disk_mb", self.task_resources.disk_mb.into());
        v.insert_path(
            "resources.network_mbps",
            self.task_resources.network_mbps.into(),
        );
        v.insert("checkpoint_dir", self.checkpoint_dir.as_str().into());
        v.insert_path("input.category", self.input_category.as_str().into());
        v.insert_path("input.partitions", self.input_partitions.into());
        v.insert("stateful", self.stateful.into());
        v.insert("priority", priority_to_str(self.priority).into());
        v.insert("slo_lag_secs", self.slo_lag_secs.into());
        v.insert(
            "memory_enforcement",
            self.memory_enforcement.as_str().into(),
        );
        v.insert("max_task_count", self.max_task_count.into());
        v.insert("resiliency", self.resiliency.as_str().into());
        v
    }

    /// Decode a merged configuration back into the typed schema. Fails if a
    /// required field is missing or has the wrong type — the JSON layering
    /// is schemaless, so this is where type errors surface.
    pub fn from_value(v: &ConfigValue) -> Result<JobConfig, ValidationError> {
        let get_str = |path: &str| -> Result<String, ValidationError> {
            v.get_path(path)
                .and_then(|x| x.as_str())
                .map(str::to_string)
                .ok_or_else(|| {
                    ValidationError::new(&format!("missing or non-string field '{path}'"))
                })
        };
        let get_u32 = |path: &str| -> Result<u32, ValidationError> {
            v.get_path(path)
                .and_then(|x| x.as_int())
                .and_then(|i| u32::try_from(i).ok())
                .ok_or_else(|| {
                    ValidationError::new(&format!("missing or invalid integer field '{path}'"))
                })
        };
        let get_f64 = |path: &str| -> Result<f64, ValidationError> {
            v.get_path(path).and_then(|x| x.as_float()).ok_or_else(|| {
                ValidationError::new(&format!("missing or non-numeric field '{path}'"))
            })
        };

        let priority_str = get_str("priority")?;
        let priority = priority_from_str(&priority_str)
            .ok_or_else(|| ValidationError::new(&format!("unknown priority '{priority_str}'")))?;
        let enforcement_str = get_str("memory_enforcement")?;
        let memory_enforcement =
            MemoryEnforcement::from_str(&enforcement_str).ok_or_else(|| {
                ValidationError::new(&format!("unknown memory_enforcement '{enforcement_str}'"))
            })?;
        // Absent means Standard (configs written before resiliency tiers
        // existed stay decodable); a present-but-unknown string is a type
        // error like any other enum field.
        let resiliency = match v.get_path("resiliency") {
            None => ResiliencyClass::Standard,
            Some(x) => {
                let s = x
                    .as_str()
                    .ok_or_else(|| ValidationError::new("field 'resiliency' must be a string"))?;
                ResiliencyClass::from_str(s).ok_or_else(|| {
                    ValidationError::new(&format!("unknown resiliency class '{s}'"))
                })?
            }
        };

        let config = JobConfig {
            package: PackageSpec {
                name: get_str("package.name")?,
                version: v
                    .get_path("package.version")
                    .and_then(|x| x.as_int())
                    .and_then(|i| u64::try_from(i).ok())
                    .ok_or_else(|| ValidationError::new("missing or invalid 'package.version'"))?,
            },
            args: v
                .get_path("args")
                .and_then(|x| x.as_array())
                .ok_or_else(|| ValidationError::new("missing or non-array field 'args'"))?
                .iter()
                .map(|a| {
                    a.as_str()
                        .map(str::to_string)
                        .ok_or_else(|| ValidationError::new("'args' entries must be strings"))
                })
                .collect::<Result<Vec<String>, ValidationError>>()?,
            task_count: get_u32("task_count")?,
            threads_per_task: get_u32("threads_per_task")?,
            task_resources: Resources::new(
                get_f64("resources.cpu")?,
                get_f64("resources.memory_mb")?,
                get_f64("resources.disk_mb")?,
                get_f64("resources.network_mbps")?,
            ),
            checkpoint_dir: get_str("checkpoint_dir")?,
            input_category: get_str("input.category")?,
            input_partitions: get_u32("input.partitions")?,
            stateful: v
                .get_path("stateful")
                .and_then(|x| x.as_bool())
                .ok_or_else(|| ValidationError::new("missing or non-boolean field 'stateful'"))?,
            priority,
            slo_lag_secs: get_f64("slo_lag_secs")?,
            memory_enforcement,
            max_task_count: get_u32("max_task_count")?,
            resiliency,
        };
        Ok(config)
    }
}

fn priority_to_str(p: Priority) -> &'static str {
    match p {
        Priority::Low => "low",
        Priority::Normal => "normal",
        Priority::High => "high",
        Priority::Privileged => "privileged",
    }
}

fn priority_from_str(s: &str) -> Option<Priority> {
    match s {
        "low" => Some(Priority::Low),
        "normal" => Some(Priority::Normal),
        "high" => Some(Priority::High),
        "privileged" => Some(Priority::Privileged),
        _ => None,
    }
}

/// A failed schema validation or typed decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValidationError {
    /// Human-readable description of the violation.
    pub message: String,
}

impl ValidationError {
    fn new(message: &str) -> Self {
        ValidationError {
            message: message.to_string(),
        }
    }
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid job config: {}", self.message)
    }
}

impl std::error::Error for ValidationError {}

impl turbine_types::Snap for PackageSpec {
    fn snap(&self, w: &mut turbine_types::SnapWriter) {
        w.put(&self.name);
        w.u64(self.version);
    }

    fn unsnap(r: &mut turbine_types::SnapReader<'_>) -> Result<Self, turbine_types::SnapError> {
        Ok(PackageSpec {
            name: r.get()?,
            version: r.u64("PackageSpec.version")?,
        })
    }
}

impl turbine_types::Snap for MemoryEnforcement {
    fn snap(&self, w: &mut turbine_types::SnapWriter) {
        w.u8(match self {
            MemoryEnforcement::Cgroup => 0,
            MemoryEnforcement::Jvm => 1,
            MemoryEnforcement::SoftLimit => 2,
        });
    }

    fn unsnap(r: &mut turbine_types::SnapReader<'_>) -> Result<Self, turbine_types::SnapError> {
        match r.u8("MemoryEnforcement.tag")? {
            0 => Ok(MemoryEnforcement::Cgroup),
            1 => Ok(MemoryEnforcement::Jvm),
            2 => Ok(MemoryEnforcement::SoftLimit),
            tag => Err(turbine_types::SnapError::Tag(
                "MemoryEnforcement",
                tag as u64,
            )),
        }
    }
}

impl turbine_types::Snap for ResiliencyClass {
    fn snap(&self, w: &mut turbine_types::SnapWriter) {
        w.u8(match self {
            ResiliencyClass::BestEffort => 0,
            ResiliencyClass::Standard => 1,
            ResiliencyClass::Critical => 2,
        });
    }

    fn unsnap(r: &mut turbine_types::SnapReader<'_>) -> Result<Self, turbine_types::SnapError> {
        match r.u8("ResiliencyClass.tag")? {
            0 => Ok(ResiliencyClass::BestEffort),
            1 => Ok(ResiliencyClass::Standard),
            2 => Ok(ResiliencyClass::Critical),
            tag => Err(turbine_types::SnapError::Tag("ResiliencyClass", tag as u64)),
        }
    }
}

impl turbine_types::Snap for JobConfig {
    fn snap(&self, w: &mut turbine_types::SnapWriter) {
        w.put(&self.package);
        w.put(&self.args);
        w.u32(self.task_count);
        w.u32(self.threads_per_task);
        w.put(&self.task_resources);
        w.put(&self.checkpoint_dir);
        w.put(&self.input_category);
        w.u32(self.input_partitions);
        w.put(&self.stateful);
        w.put(&self.priority);
        w.put(&self.slo_lag_secs);
        w.put(&self.memory_enforcement);
        w.u32(self.max_task_count);
        w.put(&self.resiliency);
    }

    fn unsnap(r: &mut turbine_types::SnapReader<'_>) -> Result<Self, turbine_types::SnapError> {
        Ok(JobConfig {
            package: r.get()?,
            args: r.get()?,
            task_count: r.u32("JobConfig.task_count")?,
            threads_per_task: r.u32("JobConfig.threads_per_task")?,
            task_resources: r.get()?,
            checkpoint_dir: r.get()?,
            input_category: r.get()?,
            input_partitions: r.u32("JobConfig.input_partitions")?,
            stateful: r.get()?,
            priority: r.get()?,
            slo_lag_secs: r.get()?,
            memory_enforcement: r.get()?,
            max_task_count: r.u32("JobConfig.max_task_count")?,
            resiliency: r.get()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stateless_template_is_valid() {
        let cfg = JobConfig::stateless("tailer", 4, 16);
        cfg.validate().expect("template must validate");
    }

    #[test]
    fn typed_roundtrip_through_json() {
        let mut cfg = JobConfig::stateless("tailer", 4, 16);
        cfg.stateful = true;
        cfg.priority = Priority::Privileged;
        cfg.memory_enforcement = MemoryEnforcement::Cgroup;
        cfg.resiliency = ResiliencyClass::Critical;
        cfg.task_resources = Resources::new(2.5, 1024.0, 4096.0, 12.5);
        let decoded = JobConfig::from_value(&cfg.to_value()).expect("decode");
        assert_eq!(decoded, cfg);
    }

    #[test]
    fn resiliency_defaults_to_standard_when_absent() {
        // Configs persisted before the resiliency field existed must keep
        // decoding (the Job Store replays old WAL entries on recovery).
        let mut v = JobConfig::stateless("tailer", 2, 8).to_value();
        v.as_map_mut().expect("map").remove("resiliency");
        let cfg = JobConfig::from_value(&v).expect("decode");
        assert_eq!(cfg.resiliency, ResiliencyClass::Standard);
    }

    #[test]
    fn resiliency_names_roundtrip_and_reject_unknowns() {
        for class in ResiliencyClass::ALL {
            assert_eq!(ResiliencyClass::from_str(class.as_str()), Some(class));
        }
        assert_eq!(ResiliencyClass::from_str("platinum"), None);
        let mut v = JobConfig::stateless("t", 1, 1).to_value();
        v.insert("resiliency", "platinum".into());
        assert!(JobConfig::from_value(&v).is_err());
    }

    #[test]
    fn roundtrip_survives_text_serialization() {
        let cfg = JobConfig::stateless("tailer", 2, 8);
        let text = crate::text::to_text(&cfg.to_value());
        let reparsed = crate::text::parse(&text).expect("parse");
        assert_eq!(JobConfig::from_value(&reparsed).expect("decode"), cfg);
    }

    #[test]
    fn validation_rejects_bad_configs() {
        let mut cfg = JobConfig::stateless("tailer", 4, 16);
        cfg.task_count = 0;
        assert!(cfg.validate().is_err());

        let mut cfg = JobConfig::stateless("tailer", 4, 16);
        cfg.task_count = 17; // more tasks than partitions
        assert!(cfg.validate().is_err());

        let mut cfg = JobConfig::stateless("tailer", 4, 16);
        cfg.max_task_count = 2;
        assert!(cfg.validate().is_err());

        let mut cfg = JobConfig::stateless("", 4, 16);
        cfg.package.name.clear();
        assert!(cfg.validate().is_err());

        let mut cfg = JobConfig::stateless("tailer", 4, 16);
        cfg.slo_lag_secs = 0.0;
        assert!(cfg.validate().is_err());

        let mut cfg = JobConfig::stateless("tailer", 4, 16);
        cfg.task_resources.cpu = 0.0;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn decode_reports_missing_fields() {
        let err = JobConfig::from_value(&ConfigValue::empty_map()).expect_err("must fail");
        assert!(err.message.contains("missing"), "got: {}", err.message);
    }

    #[test]
    fn decode_reports_type_errors() {
        let mut v = JobConfig::stateless("t", 1, 1).to_value();
        v.insert("task_count", "four".into());
        let err = JobConfig::from_value(&v).expect_err("must fail");
        assert!(err.message.contains("task_count"));
    }

    #[test]
    fn decode_rejects_unknown_enum_strings() {
        let mut v = JobConfig::stateless("t", 1, 1).to_value();
        v.insert("priority", "urgent".into());
        assert!(JobConfig::from_value(&v).is_err());

        let mut v = JobConfig::stateless("t", 1, 1).to_value();
        v.insert("memory_enforcement", "none".into());
        assert!(JobConfig::from_value(&v).is_err());
    }

    #[test]
    fn scaler_override_merges_into_typed_view() {
        // A Scaler-level config that only bumps task_count layers cleanly
        // over the base config and decodes back.
        let base = JobConfig::stateless("tailer", 4, 64).to_value();
        let mut scaler = ConfigValue::empty_map();
        scaler.insert("task_count", 12u32.into());
        let merged = crate::merge::layer_configs(&base, &scaler);
        let cfg = JobConfig::from_value(&merged).expect("decode");
        assert_eq!(cfg.task_count, 12);
        assert_eq!(cfg.package.name, "tailer");
    }
}
