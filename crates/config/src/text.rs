//! Text (JSON) serialization for [`ConfigValue`].
//!
//! Turbine converts Thrift-typed configs to JSON with Thrift's JSON
//! serialization protocol and stores/merges them in that form. This module
//! is our equivalent: a strict JSON subset parser and a deterministic
//! printer. The printer and parser round-trip exactly (property-tested),
//! which is what the Job Store's write-ahead log relies on for recovery.

use crate::value::ConfigValue;
use std::collections::BTreeMap;
use std::fmt;

/// Error produced when parsing malformed configuration text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the error in the input.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "config parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Serialize a value to compact JSON text. Map keys appear in sorted order
/// (guaranteed by the `BTreeMap` representation), so output is
/// deterministic: equal values serialize to equal strings.
pub fn to_text(value: &ConfigValue) -> String {
    let mut out = String::new();
    write_value(value, &mut out);
    out
}

fn write_value(value: &ConfigValue, out: &mut String) {
    match value {
        ConfigValue::Null => out.push_str("null"),
        ConfigValue::Bool(true) => out.push_str("true"),
        ConfigValue::Bool(false) => out.push_str("false"),
        ConfigValue::Int(i) => out.push_str(&i.to_string()),
        ConfigValue::Float(f) => {
            // Always keep a decimal point or exponent so floats parse back
            // as floats; NaN/inf are schema bugs and must not be stored.
            assert!(f.is_finite(), "non-finite floats cannot be serialized");
            let s = format!("{f:?}");
            out.push_str(&s);
            if !s.contains('.') && !s.contains('e') && !s.contains('E') {
                out.push_str(".0");
            }
        }
        ConfigValue::Str(s) => write_string(s, out),
        ConfigValue::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        ConfigValue::Map(map) => {
            out.push('{');
            for (i, (k, v)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(v, out);
            }
            out.push('}');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse JSON text into a [`ConfigValue`]. Trailing non-whitespace input is
/// an error.
pub fn parse(input: &str) -> Result<ConfigValue, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("unexpected trailing input"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn parse_value(&mut self) -> Result<ConfigValue, ParseError> {
        match self.peek() {
            Some(b'{') => self.parse_map(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(ConfigValue::Str(self.parse_string()?)),
            Some(b't') => self.parse_keyword("true", ConfigValue::Bool(true)),
            Some(b'f') => self.parse_keyword("false", ConfigValue::Bool(false)),
            Some(b'n') => self.parse_keyword("null", ConfigValue::Null),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn parse_keyword(&mut self, kw: &str, value: ConfigValue) -> Result<ConfigValue, ParseError> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{kw}'")))
        }
    }

    fn parse_map(&mut self) -> Result<ConfigValue, ParseError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(ConfigValue::Map(map));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(ConfigValue::Map(map)),
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn parse_array(&mut self) -> Result<ConfigValue, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(ConfigValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(ConfigValue::Array(items)),
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(s),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => s.push('"'),
                    Some(b'\\') => s.push('\\'),
                    Some(b'/') => s.push('/'),
                    Some(b'n') => s.push('\n'),
                    Some(b'r') => s.push('\r'),
                    Some(b't') => s.push('\t'),
                    Some(b'b') => s.push('\u{0008}'),
                    Some(b'f') => s.push('\u{000C}'),
                    Some(b'u') => {
                        let code = self.parse_hex4()?;
                        // Handle surrogate pairs for characters outside the BMP.
                        let c = if (0xD800..0xDC00).contains(&code) {
                            if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                                return Err(self.err("expected low surrogate escape"));
                            }
                            let low = self.parse_hex4()?;
                            if !(0xDC00..0xE000).contains(&low) {
                                return Err(self.err("invalid low surrogate"));
                            }
                            let combined = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                            char::from_u32(combined)
                        } else {
                            char::from_u32(code)
                        };
                        s.push(c.ok_or_else(|| self.err("invalid unicode escape"))?);
                    }
                    _ => return Err(self.err("invalid escape sequence")),
                },
                Some(b) if b < 0x20 => return Err(self.err("raw control character in string")),
                Some(b) => {
                    // Re-assemble multi-byte UTF-8: the input is a &str so
                    // the bytes are valid; find the char boundary.
                    if b < 0x80 {
                        s.push(b as char);
                    } else {
                        let start = self.pos - 1;
                        let width = utf8_width(b);
                        self.pos = start + width;
                        let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| self.err("invalid UTF-8"))?;
                        s.push_str(chunk);
                    }
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, ParseError> {
        let mut code: u32 = 0;
        for _ in 0..4 {
            let b = self
                .bump()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let digit = (b as char)
                .to_digit(16)
                .ok_or_else(|| self.err("invalid hex digit in \\u escape"))?;
            code = code * 16 + digit;
        }
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<ConfigValue, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        if is_float {
            text.parse::<f64>()
                .map(ConfigValue::Float)
                .map_err(|_| self.err("invalid number"))
        } else {
            text.parse::<i64>()
                .map(ConfigValue::Int)
                .map_err(|_| self.err("integer out of range"))
        }
    }
}

fn utf8_width(first_byte: u8) -> usize {
    match first_byte {
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(s: &str) {
        let v = parse(s).unwrap_or_else(|e| panic!("parse {s:?}: {e}"));
        assert_eq!(parse(&to_text(&v)).expect("reparse"), v, "roundtrip of {s}");
    }

    #[test]
    fn scalars_roundtrip() {
        for s in [
            "null", "true", "false", "0", "-17", "3.5", "-0.25", "1e3", r#""hi""#,
        ] {
            roundtrip(s);
        }
    }

    #[test]
    fn containers_roundtrip() {
        roundtrip(r#"{"a": [1, 2, {"b": null}], "c": {"d": "e"}}"#);
        roundtrip("[]");
        roundtrip("{}");
        roundtrip(r#"[[[1]]]"#);
    }

    #[test]
    fn strings_with_escapes_roundtrip() {
        roundtrip(r#""line\nbreak\ttab\"quote\\slash""#);
        roundtrip(r#""unicode: é 你""#);
        roundtrip(r#""astral: 😀""#); // 😀 via surrogate pair
        roundtrip("\"direct utf8: éñ你\"");
    }

    #[test]
    fn deterministic_output_sorts_keys() {
        let v = parse(r#"{"z": 1, "a": 2}"#).expect("parse");
        assert_eq!(to_text(&v), r#"{"a":2,"z":1}"#);
    }

    #[test]
    fn floats_keep_float_identity() {
        let v = parse("2.0").expect("parse");
        assert_eq!(v, ConfigValue::Float(2.0));
        assert_eq!(to_text(&v), "2.0");
        assert_eq!(parse(&to_text(&v)).expect("reparse"), v);
    }

    #[test]
    fn errors_carry_offsets() {
        let e = parse("{\"a\": }").expect_err("should fail");
        assert_eq!(e.offset, 6);
        assert!(parse("").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{1: 2}").is_err());
        assert!(parse("tru").is_err());
        assert!(parse("1 2").is_err());
        assert!(parse(r#""unterminated"#).is_err());
        assert!(parse(r#""bad \x escape""#).is_err());
        assert!(parse("99999999999999999999").is_err());
    }

    #[test]
    fn whitespace_is_tolerated() {
        roundtrip(" \n\t{ \"a\" : [ 1 , 2 ] } \r\n");
    }

    #[test]
    fn duplicate_keys_last_wins() {
        // Like most JSON parsers (and Thrift's), later duplicates override.
        let v = parse(r#"{"a": 1, "a": 2}"#).expect("parse");
        assert_eq!(v.get("a").and_then(|x| x.as_int()), Some(2));
    }
}
