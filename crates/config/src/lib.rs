//! Hierarchical job configuration for Turbine (paper §III-A).
//!
//! Turbine stores job configuration as layered JSON documents: a Base level,
//! a Provisioner level, a Scaler level, and an Oncall level, each taking
//! precedence over the previous ones. In production the typed schema is
//! enforced by Thrift and serialized to JSON; here the typed schema is
//! [`JobConfig`] (compile-time checked Rust) and the JSON representation is
//! [`ConfigValue`], with a full text parser/serializer so configurations can
//! be durably logged and recovered.
//!
//! The heart of the crate is [`merge::layer_configs`] — the paper's
//! Algorithm 1 — which recursively merges nested maps while letting the top
//! layer override the bottom one.

pub mod job;
pub mod level;
pub mod merge;
pub mod text;
pub mod value;

pub use job::{JobConfig, MemoryEnforcement, PackageSpec, ResiliencyClass, ValidationError};
pub use level::ConfigLevel;
pub use merge::{layer_all, layer_configs};
pub use text::{parse, to_text, ParseError};
pub use value::ConfigValue;
