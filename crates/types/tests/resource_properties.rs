//! Property tests for the resource-vector algebra: the laws the placement
//! and accounting code silently rely on.

use proptest::prelude::*;
use turbine_types::{Percentiles, ResourceKind, Resources};

fn arb_res() -> impl Strategy<Value = Resources> {
    (
        0.0f64..100.0,
        0.0f64..100_000.0,
        0.0f64..1.0e6,
        0.0f64..1000.0,
    )
        .prop_map(|(c, m, d, n)| Resources::new(c, m, d, n))
}

proptest! {
    /// Addition is commutative and associative (up to float error).
    #[test]
    fn addition_laws(a in arb_res(), b in arb_res(), c in arb_res()) {
        let ab = a + b;
        let ba = b + a;
        for kind in ResourceKind::ALL {
            prop_assert!((ab.get(kind) - ba.get(kind)).abs() < 1e-9);
        }
        let left = (a + b) + c;
        let right = a + (b + c);
        for kind in ResourceKind::ALL {
            prop_assert!((left.get(kind) - right.get(kind)).abs() < 1e-6);
        }
    }

    /// Saturating subtraction never yields negatives and undoes addition
    /// when nothing saturates.
    #[test]
    fn subtraction_laws(a in arb_res(), b in arb_res()) {
        prop_assert!((a - b).is_non_negative());
        let roundtrip = (a + b) - b;
        for kind in ResourceKind::ALL {
            prop_assert!((roundtrip.get(kind) - a.get(kind)).abs() < 1e-6);
        }
    }

    /// `fits_within` is a partial order compatible with addition: if a and
    /// b both fit in half of c, a+b fits in c.
    #[test]
    fn fits_within_is_monotone(a in arb_res(), b in arb_res(), c in arb_res()) {
        let half = c.scale(0.5);
        if a.fits_within(&half) && b.fits_within(&half) {
            prop_assert!((a + b).fits_within(&c.scale(1.0 + 1e-12)));
        }
        // Reflexivity.
        prop_assert!(a.fits_within(&a));
    }

    /// Dominant utilization is the max over per-dimension ratios and
    /// scales linearly with load.
    #[test]
    fn dominant_utilization_laws(load in arb_res(), cap in arb_res(), k in 0.1f64..10.0) {
        prop_assume!(cap.cpu > 0.1 && cap.memory_mb > 1.0 && cap.disk_mb > 1.0 && cap.network_mbps > 0.1);
        let u = load.dominant_utilization(&cap);
        for kind in ResourceKind::ALL {
            prop_assert!(u + 1e-12 >= load.get(kind) / cap.get(kind));
        }
        let scaled = load.scale(k).dominant_utilization(&cap);
        prop_assert!((scaled - u * k).abs() < 1e-6 * k.max(1.0));
    }

    /// min/max are lattice operations: min <= each input <= max per
    /// dimension, idempotent, commutative.
    #[test]
    fn min_max_lattice(a in arb_res(), b in arb_res()) {
        let lo = a.min(&b);
        let hi = a.max(&b);
        for kind in ResourceKind::ALL {
            prop_assert!(lo.get(kind) <= a.get(kind) && lo.get(kind) <= b.get(kind));
            prop_assert!(hi.get(kind) >= a.get(kind) && hi.get(kind) >= b.get(kind));
        }
        prop_assert_eq!(a.min(&a), a);
        prop_assert_eq!(a.max(&a), a);
        prop_assert_eq!(a.min(&b), b.min(&a));
        prop_assert_eq!(a.max(&b), b.max(&a));
    }

    /// Percentile summaries are ordered and bounded by the sample range.
    #[test]
    fn percentiles_are_ordered(samples in prop::collection::vec(-1.0e6f64..1.0e6, 1..300)) {
        let p = Percentiles::from_samples(&samples);
        let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(p.p5 <= p.p50 && p.p50 <= p.p95);
        prop_assert!(p.p5 >= min && p.p95 <= max);
        prop_assert!(p.mean >= min - 1e-9 && p.mean <= max + 1e-9);
    }
}
