//! Property tests for the bounded [`TimeSeries`]: its window queries
//! checked against an unbounded oracle that keeps every sample.

use proptest::prelude::*;
use turbine_types::{Duration, SimTime, TimeSeries};

/// The oracle: every sample, forever, queried with the original exact
/// (pre-compaction) semantics.
struct Oracle {
    points: Vec<(SimTime, f64)>,
}

impl Oracle {
    fn mean_in_window(&self, start: SimTime, end: SimTime) -> Option<f64> {
        let in_window: Vec<f64> = self
            .points
            .iter()
            .filter(|&&(t, _)| t >= start && t < end)
            .map(|&(_, v)| v)
            .collect();
        (!in_window.is_empty()).then(|| in_window.iter().sum::<f64>() / in_window.len() as f64)
    }

    fn max_in_window(&self, start: SimTime, end: SimTime) -> Option<f64> {
        self.points
            .iter()
            .filter(|&&(t, _)| t >= start && t < end)
            .map(|&(_, v)| v)
            .fold(None, |m: Option<f64>, v| Some(m.map_or(v, |m| m.max(v))))
    }

    fn value_at(&self, at: SimTime) -> Option<f64> {
        self.points
            .iter()
            .rev()
            .find(|&&(t, _)| t <= at)
            .map(|&(_, v)| v)
    }

    fn min(&self) -> f64 {
        self.points
            .iter()
            .map(|&(_, v)| v)
            .fold(f64::INFINITY, f64::min)
    }

    fn max(&self) -> f64 {
        self.points
            .iter()
            .map(|&(_, v)| v)
            .fold(f64::NEG_INFINITY, f64::max)
    }
}

fn t(secs: u64) -> SimTime {
    SimTime::ZERO + Duration::from_secs(secs)
}

/// A sample stream: (gap seconds, value) pairs, appended in time order.
fn arb_stream() -> impl Strategy<Value = Vec<(u64, f64)>> {
    proptest::collection::vec((0u64..120, -1000.0f64..1000.0), 1..600)
}

fn build(stream: &[(u64, f64)], capacity: usize) -> (TimeSeries, Oracle) {
    let mut series = TimeSeries::with_capacity(capacity);
    let mut points = Vec::new();
    let mut now = 0u64;
    for &(gap, v) in stream {
        now += gap;
        series.record(t(now), v);
        points.push((t(now), v));
    }
    (series, Oracle { points })
}

proptest! {
    /// Storage is bounded by the configured capacity no matter how many
    /// samples arrive, while the logical length counts everything.
    #[test]
    fn storage_is_bounded(stream in arb_stream(), cap in 8usize..64) {
        let (series, oracle) = build(&stream, cap);
        prop_assert!(series.points().len() <= cap.max(8));
        prop_assert!(series.buckets().len() <= (cap.max(8) / 2).max(1));
        prop_assert_eq!(series.len(), oracle.points.len());
        let retained = series.points().len() as u64
            + series.buckets().iter().map(|b| b.count).sum::<u64>();
        prop_assert_eq!(retained, oracle.points.len() as u64);
    }

    /// Full-range queries are exact vs the unbounded oracle: sums, counts,
    /// and maxima are preserved under pairwise merging.
    #[test]
    fn full_range_queries_match_the_oracle(stream in arb_stream(), cap in 8usize..64) {
        let (series, oracle) = build(&stream, cap);
        let horizon = t(1_000_000);
        let mean = series.mean_in_window(SimTime::ZERO, horizon).expect("non-empty");
        let oracle_mean = oracle.mean_in_window(SimTime::ZERO, horizon).expect("non-empty");
        prop_assert!((mean - oracle_mean).abs() < 1e-9 * oracle_mean.abs().max(1.0));
        prop_assert_eq!(
            series.max_in_window(SimTime::ZERO, horizon),
            oracle.max_in_window(SimTime::ZERO, horizon)
        );
        prop_assert_eq!(series.last(), oracle.points.last().map(|&(_, v)| v));
    }

    /// Queries confined to the retained exact tail match the oracle
    /// sample for sample.
    #[test]
    fn tail_window_queries_are_exact(stream in arb_stream(), cap in 8usize..64) {
        let (series, oracle) = build(&stream, cap);
        let Some(&(tail_start, _)) = series.points().first() else {
            return Ok(());
        };
        let end = t(1_000_000);
        prop_assert_eq!(
            series.max_in_window(tail_start, end),
            oracle.max_in_window(tail_start, end)
        );
        if let Some(mean) = series.mean_in_window(tail_start, end) {
            let oracle_mean = oracle.mean_in_window(tail_start, end).expect("non-empty");
            prop_assert!((mean - oracle_mean).abs() < 1e-9 * oracle_mean.abs().max(1.0));
        }
        // Point lookups inside the tail are exact.
        for &(at, _) in series.points() {
            prop_assert_eq!(series.value_at(at), oracle.value_at(at));
        }
    }

    /// Arbitrary windows: the bounded series answers from samples the
    /// oracle also saw, so results stay inside the oracle's value range;
    /// compacted buckets are only counted when fully inside the window, so
    /// the mean never includes out-of-window history.
    #[test]
    fn arbitrary_windows_stay_within_oracle_bounds(
        stream in arb_stream(),
        cap in 8usize..64,
        start_secs in 0u64..40_000,
        span_secs in 1u64..40_000,
    ) {
        let (series, oracle) = build(&stream, cap);
        let (start, end) = (t(start_secs), t(start_secs + span_secs));
        if let Some(mean) = series.mean_in_window(start, end) {
            prop_assert!(mean >= oracle.min() - 1e-9 && mean <= oracle.max() + 1e-9);
        }
        if let Some(max) = series.max_in_window(start, end) {
            // A bucket-granular max can skip partially-covered buckets but
            // can never invent a value the oracle did not record.
            prop_assert!(max <= oracle.max() + 1e-9);
            prop_assert!(max >= oracle.min() - 1e-9);
        }
        if let Some(v) = series.value_at(start) {
            prop_assert!(v >= oracle.min() - 1e-9 && v <= oracle.max() + 1e-9);
        }
    }

    /// A series whose capacity exceeds the stream length never compacts:
    /// every query is bit-identical to the oracle.
    #[test]
    fn uncompacted_series_is_bit_exact(stream in arb_stream()) {
        let (series, oracle) = build(&stream, 1024);
        prop_assert_eq!(series.points().len(), oracle.points.len());
        prop_assert!(series.buckets().is_empty());
        for probe in [0u64, 17, 500, 5_000, 50_000] {
            prop_assert_eq!(series.value_at(t(probe)), oracle.value_at(t(probe)));
            prop_assert_eq!(
                series.max_in_window(t(probe), t(probe + 1000)),
                oracle.max_in_window(t(probe), t(probe + 1000))
            );
        }
    }
}
