//! Shared primitive types for the Turbine platform.
//!
//! Every other crate in the workspace builds on the identifiers, simulated
//! time, multi-dimensional resource vectors, and metric primitives defined
//! here. The crate is dependency-free by design so that substrates (Scribe,
//! the cluster manager, the shard manager) and the control plane can share
//! vocabulary without coupling.

pub mod ids;
pub mod metrics;
pub mod priority;
pub mod resources;
pub mod snap;
pub mod time;

pub use ids::{ContainerId, HostId, JobId, PartitionId, ShardId, TaskId};
pub use metrics::{
    nearest_rank, nearest_rank_index, nearest_rank_u64, Cdf, Counter, Gauge, Percentiles,
    SeriesBucket, TimeSeries, DEFAULT_SERIES_CAPACITY,
};
pub use priority::Priority;
pub use resources::{ResourceKind, Resources};
pub use snap::{Snap, SnapError, SnapReader, SnapWriter};
pub use time::{Duration, SimTime};
