//! Simulated time.
//!
//! The whole platform runs against a discrete-event clock, so control-loop
//! cadences (30 s sync rounds, 60 s heartbeats, 30 min rebalances) are
//! expressed in [`Duration`] and instants in [`SimTime`]. Millisecond
//! resolution is enough for every cadence in the paper while keeping
//! arithmetic in plain `u64`.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A span of simulated time with millisecond resolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Duration(u64);

impl Duration {
    /// Zero-length span.
    pub const ZERO: Duration = Duration(0);

    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        Duration(ms)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        Duration(s * 1_000)
    }

    /// Construct from whole minutes.
    pub const fn from_mins(m: u64) -> Self {
        Duration(m * 60_000)
    }

    /// Construct from whole hours.
    pub const fn from_hours(h: u64) -> Self {
        Duration(h * 3_600_000)
    }

    /// Construct from whole days.
    pub const fn from_days(d: u64) -> Self {
        Duration(d * 86_400_000)
    }

    /// Construct from fractional seconds, rounding to the nearest
    /// millisecond. Negative inputs clamp to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        Duration((s.max(0.0) * 1_000.0).round() as u64)
    }

    /// Length in milliseconds.
    pub const fn as_millis(self) -> u64 {
        self.0
    }

    /// Length in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Length in fractional hours.
    pub fn as_hours_f64(self) -> f64 {
        self.0 as f64 / 3_600_000.0
    }

    /// Multiply by an integer factor.
    pub const fn mul(self, factor: u64) -> Self {
        Duration(self.0 * factor)
    }

    /// True if the span is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add for Duration {
    type Output = Duration;
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0 + rhs.0)
    }
}

impl Sub for Duration {
    type Output = Duration;
    fn sub(self, rhs: Duration) -> Duration {
        Duration(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ms = self.0;
        if ms >= 3_600_000 {
            write!(f, "{:.2}h", ms as f64 / 3_600_000.0)
        } else if ms >= 60_000 {
            write!(f, "{:.2}m", ms as f64 / 60_000.0)
        } else if ms >= 1_000 {
            write!(f, "{:.2}s", ms as f64 / 1_000.0)
        } else {
            write!(f, "{ms}ms")
        }
    }
}

/// An instant on the simulated clock (milliseconds since simulation start).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0);

    /// Construct from milliseconds since the epoch.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms)
    }

    /// Milliseconds since the epoch.
    pub const fn as_millis(self) -> u64 {
        self.0
    }

    /// Fractional seconds since the epoch.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Fractional hours since the epoch.
    pub fn as_hours_f64(self) -> f64 {
        self.0 as f64 / 3_600_000.0
    }

    /// Fractional days since the epoch.
    pub fn as_days_f64(self) -> f64 {
        self.0 as f64 / 86_400_000.0
    }

    /// Span elapsed since `earlier`; zero if `earlier` is in the future.
    pub fn since(self, earlier: SimTime) -> Duration {
        Duration(self.0.saturating_sub(earlier.0))
    }

    /// Position within the simulated day, as a duration since midnight.
    /// Used by the Pattern Analyzer to align per-minute workload history
    /// across days.
    pub fn time_of_day(self) -> Duration {
        Duration(self.0 % 86_400_000)
    }

    /// Minute-of-day index in `0..1440`, the granularity at which the
    /// paper's historical workload patterns are recorded.
    pub fn minute_of_day(self) -> usize {
        ((self.0 / 60_000) % 1_440) as usize
    }
}

impl Add<Duration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: Duration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<Duration> for SimTime {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub<Duration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: Duration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}", Duration(self.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(Duration::from_secs(60), Duration::from_mins(1));
        assert_eq!(Duration::from_mins(60), Duration::from_hours(1));
        assert_eq!(Duration::from_hours(24), Duration::from_days(1));
        assert_eq!(Duration::from_secs_f64(1.5), Duration::from_millis(1500));
    }

    #[test]
    fn negative_float_clamps_to_zero() {
        assert_eq!(Duration::from_secs_f64(-3.0), Duration::ZERO);
    }

    #[test]
    fn simtime_arithmetic() {
        let t = SimTime::ZERO + Duration::from_mins(5);
        assert_eq!(t.as_millis(), 300_000);
        assert_eq!(t.since(SimTime::ZERO), Duration::from_mins(5));
        // `since` saturates rather than underflowing.
        assert_eq!(SimTime::ZERO.since(t), Duration::ZERO);
        assert_eq!(t - Duration::from_mins(10), SimTime::ZERO);
    }

    #[test]
    fn minute_of_day_wraps_across_days() {
        let t = SimTime::ZERO + Duration::from_days(2) + Duration::from_mins(61);
        assert_eq!(t.minute_of_day(), 61);
        assert_eq!(t.time_of_day(), Duration::from_mins(61));
    }

    #[test]
    fn display_is_humane() {
        assert_eq!(Duration::from_millis(5).to_string(), "5ms");
        assert_eq!(Duration::from_secs(30).to_string(), "30.00s");
        assert_eq!(Duration::from_mins(90).to_string(), "1.50h");
        assert_eq!(
            (SimTime::ZERO + Duration::from_secs(2)).to_string(),
            "t+2.00s"
        );
    }
}
