//! Strongly-typed identifiers used across the platform.
//!
//! Turbine separates *what* to run (jobs), *where* to run (shards,
//! containers, hosts), and the data-plane addressing (Scribe partitions).
//! Newtype wrappers keep those ID spaces from being mixed up at compile
//! time.

use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $inner:ty, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name(pub $inner);

        impl $name {
            /// Raw numeric value of the identifier.
            #[inline]
            pub fn raw(self) -> $inner {
                self.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<$inner> for $name {
            fn from(v: $inner) -> Self {
                Self(v)
            }
        }
    };
}

id_type!(
    /// Identifier of a streaming job (a set of parallel tasks running the
    /// same binary over disjoint input partitions).
    JobId,
    u64,
    "job-"
);
id_type!(
    /// Identifier of a shard: the unit of placement the Shard Manager
    /// assigns to Turbine containers.
    ShardId,
    u64,
    "shard-"
);
id_type!(
    /// Identifier of a Turbine container (a nested container obtained from
    /// the cluster manager, hosting a local Task Manager).
    ContainerId,
    u64,
    "container-"
);
id_type!(
    /// Identifier of a physical host in the cluster.
    HostId,
    u64,
    "host-"
);
id_type!(
    /// Identifier of a Scribe partition within a category.
    PartitionId,
    u64,
    "partition-"
);

/// Identifier of one task of a job: the `index`-th of the job's parallel
/// tasks. Task identity is derived, not allocated: task `(job, i)` always
/// processes the `i`-th slice of the job's input partitions, which is what
/// makes checkpoint redistribution on parallelism changes well-defined.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TaskId {
    /// Owning job.
    pub job: JobId,
    /// Index within the job, in `0..task_count`.
    pub index: u32,
}

impl TaskId {
    /// Create the task identifier for the `index`-th task of `job`.
    pub fn new(job: JobId, index: u32) -> Self {
        Self { job, index }
    }
}

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/task-{}", self.job, self.index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn display_formats_are_prefixed() {
        assert_eq!(JobId(7).to_string(), "job-7");
        assert_eq!(ShardId(0).to_string(), "shard-0");
        assert_eq!(ContainerId(12).to_string(), "container-12");
        assert_eq!(HostId(3).to_string(), "host-3");
        assert_eq!(PartitionId(9).to_string(), "partition-9");
        assert_eq!(TaskId::new(JobId(7), 2).to_string(), "job-7/task-2");
    }

    #[test]
    fn ids_are_usable_as_map_keys() {
        let mut set = HashSet::new();
        set.insert(TaskId::new(JobId(1), 0));
        set.insert(TaskId::new(JobId(1), 1));
        set.insert(TaskId::new(JobId(1), 0));
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn raw_roundtrips() {
        assert_eq!(JobId::from(42).raw(), 42);
        assert_eq!(ShardId::from(7).raw(), 7);
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(JobId(2) < JobId(10));
        assert!(TaskId::new(JobId(1), 5) < TaskId::new(JobId(2), 0));
    }
}
