//! Job priority levels.
//!
//! The Capacity Manager (paper §V-F) prioritizes scaling up privileged jobs
//! when cluster resources run low, and in the extreme case stops lower
//! priority jobs to unblock higher priority ones.

use std::fmt;

/// Business priority of a job, ordered from least to most important.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Priority {
    /// Best-effort pipelines; first to be stopped under cluster pressure.
    Low,
    /// The default for production pipelines.
    #[default]
    Normal,
    /// High business value applications whose availability is prioritized.
    High,
    /// Privileged jobs scaled up first during datacenter-wide events.
    Privileged,
}

impl Priority {
    /// All priorities, from lowest to highest.
    pub const ALL: [Priority; 4] = [
        Priority::Low,
        Priority::Normal,
        Priority::High,
        Priority::Privileged,
    ];
}

impl fmt::Display for Priority {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Priority::Low => "low",
            Priority::Normal => "normal",
            Priority::High => "high",
            Priority::Privileged => "privileged",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_matches_business_value() {
        assert!(Priority::Low < Priority::Normal);
        assert!(Priority::Normal < Priority::High);
        assert!(Priority::High < Priority::Privileged);
    }

    #[test]
    fn default_is_normal() {
        assert_eq!(Priority::default(), Priority::Normal);
    }
}
