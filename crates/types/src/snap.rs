//! The deterministic binary codec behind whole-sim snapshots.
//!
//! Every stateful component implements [`Snap`] for its state so the
//! platform can be serialized into a byte blob and rebuilt bit-for-bit:
//! restore-then-drive must produce the identical fingerprint and trace
//! digest as an uninterrupted run. The format is deliberately simple —
//! fixed-width little-endian scalars, length-prefixed collections, one
//! tag byte per enum variant — because simplicity is what makes "did we
//! capture everything?" auditable. There is no versioning or skipping:
//! a snapshot is only ever read by the binary that wrote it.
//!
//! Decoding is total: every read is bounds-checked and every tag is
//! matched exhaustively, so a truncated or bit-flipped blob surfaces as a
//! typed [`SnapError`], never a panic.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;

/// A failed snapshot decode. Carries the field being decoded so a corrupt
/// blob points at the layer that rejected it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapError {
    /// The blob ended while decoding `what`.
    Eof(&'static str),
    /// An enum tag had no matching variant while decoding `what`.
    Tag(&'static str, u64),
    /// A decoded value violated an invariant of `what`.
    Value(&'static str),
    /// Blob-level corruption: bad magic, chunk digest mismatch, manifest
    /// inconsistency. The string names the mismatch.
    Corrupt(String),
}

impl fmt::Display for SnapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapError::Eof(what) => write!(f, "snapshot truncated while decoding {what}"),
            SnapError::Tag(what, tag) => {
                write!(f, "snapshot has unknown tag {tag} for {what}")
            }
            SnapError::Value(what) => write!(f, "snapshot holds an invalid value for {what}"),
            SnapError::Corrupt(detail) => write!(f, "snapshot corrupt: {detail}"),
        }
    }
}

impl std::error::Error for SnapError {}

/// Append-only byte sink for encoding.
#[derive(Debug, Default)]
pub struct SnapWriter {
    buf: Vec<u8>,
}

impl SnapWriter {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Finish and take the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Write one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Write a `u32`, little-endian.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a `u64`, little-endian.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write raw bytes with a length prefix.
    pub fn bytes(&mut self, v: &[u8]) {
        self.u64(v.len() as u64);
        self.buf.extend_from_slice(v);
    }

    /// Encode any [`Snap`] value.
    pub fn put<T: Snap>(&mut self, v: &T) {
        v.snap(self);
    }
}

/// Bounds-checked cursor over an encoded blob.
#[derive(Debug)]
pub struct SnapReader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> SnapReader<'a> {
    /// A reader over `data`, positioned at the start.
    pub fn new(data: &'a [u8]) -> Self {
        SnapReader { data, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Fail unless the whole blob was consumed — catches a decoder that
    /// silently read less state than the encoder wrote.
    pub fn expect_end(&self) -> Result<(), SnapError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(SnapError::Corrupt(format!(
                "{} trailing bytes after decode",
                self.remaining()
            )))
        }
    }

    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], SnapError> {
        if self.remaining() < n {
            return Err(SnapError::Eof(what));
        }
        let slice = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Read one byte.
    pub fn u8(&mut self, what: &'static str) -> Result<u8, SnapError> {
        Ok(self.take(1, what)?[0])
    }

    /// Read a little-endian `u32`.
    pub fn u32(&mut self, what: &'static str) -> Result<u32, SnapError> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes(b.try_into().expect("4-byte slice")))
    }

    /// Read a little-endian `u64`.
    pub fn u64(&mut self, what: &'static str) -> Result<u64, SnapError> {
        let b = self.take(8, what)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8-byte slice")))
    }

    /// Read a length-prefixed byte string.
    pub fn bytes(&mut self, what: &'static str) -> Result<&'a [u8], SnapError> {
        let len = self.len_prefix(what)?;
        self.take(len, what)
    }

    /// Read a collection length prefix, bounds-checked against the bytes
    /// actually remaining so a corrupt length cannot trigger a huge
    /// allocation.
    pub fn len_prefix(&mut self, what: &'static str) -> Result<usize, SnapError> {
        let len = self.u64(what)?;
        if len > self.remaining() as u64 {
            return Err(SnapError::Eof(what));
        }
        Ok(len as usize)
    }

    /// Decode any [`Snap`] value.
    pub fn get<T: Snap>(&mut self) -> Result<T, SnapError> {
        T::unsnap(self)
    }
}

/// Complete, deterministic (de)serialization of one piece of simulation
/// state. `unsnap(snap(x)) == x` must hold for every observable behavior
/// of `x` — any state that influences future evolution must round-trip.
pub trait Snap: Sized {
    /// Encode `self` into the writer.
    fn snap(&self, w: &mut SnapWriter);
    /// Decode a value; total (never panics on corrupt input).
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError>;
}

impl Snap for u8 {
    fn snap(&self, w: &mut SnapWriter) {
        w.u8(*self);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        r.u8("u8")
    }
}

impl Snap for u32 {
    fn snap(&self, w: &mut SnapWriter) {
        w.u32(*self);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        r.u32("u32")
    }
}

impl Snap for u64 {
    fn snap(&self, w: &mut SnapWriter) {
        w.u64(*self);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        r.u64("u64")
    }
}

impl Snap for i64 {
    fn snap(&self, w: &mut SnapWriter) {
        w.u64(*self as u64);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(r.u64("i64")? as i64)
    }
}

impl Snap for usize {
    fn snap(&self, w: &mut SnapWriter) {
        w.u64(*self as u64);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        usize::try_from(r.u64("usize")?).map_err(|_| SnapError::Value("usize"))
    }
}

impl Snap for bool {
    fn snap(&self, w: &mut SnapWriter) {
        w.u8(*self as u8);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        match r.u8("bool")? {
            0 => Ok(false),
            1 => Ok(true),
            tag => Err(SnapError::Tag("bool", tag as u64)),
        }
    }
}

impl Snap for f64 {
    /// Bit-pattern round-trip: NaN payloads and signed zeros survive, so
    /// restored floating-point state is indistinguishable from the
    /// original.
    fn snap(&self, w: &mut SnapWriter) {
        w.u64(self.to_bits());
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(f64::from_bits(r.u64("f64")?))
    }
}

impl Snap for String {
    fn snap(&self, w: &mut SnapWriter) {
        w.bytes(self.as_bytes());
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let bytes = r.bytes("string")?;
        String::from_utf8(bytes.to_vec()).map_err(|_| SnapError::Value("string utf-8"))
    }
}

impl<T: Snap> Snap for Option<T> {
    fn snap(&self, w: &mut SnapWriter) {
        match self {
            None => w.u8(0),
            Some(v) => {
                w.u8(1);
                v.snap(w);
            }
        }
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        match r.u8("option tag")? {
            0 => Ok(None),
            1 => Ok(Some(T::unsnap(r)?)),
            tag => Err(SnapError::Tag("option", tag as u64)),
        }
    }
}

impl<T: Snap> Snap for Vec<T> {
    fn snap(&self, w: &mut SnapWriter) {
        w.u64(self.len() as u64);
        for item in self {
            item.snap(w);
        }
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let len = r.len_prefix("vec length")?;
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(T::unsnap(r)?);
        }
        Ok(out)
    }
}

impl<T: Snap> Snap for VecDeque<T> {
    fn snap(&self, w: &mut SnapWriter) {
        w.u64(self.len() as u64);
        for item in self {
            item.snap(w);
        }
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let len = r.len_prefix("deque length")?;
        let mut out = VecDeque::with_capacity(len);
        for _ in 0..len {
            out.push_back(T::unsnap(r)?);
        }
        Ok(out)
    }
}

impl<K: Snap + Ord, V: Snap> Snap for BTreeMap<K, V> {
    fn snap(&self, w: &mut SnapWriter) {
        w.u64(self.len() as u64);
        for (k, v) in self {
            k.snap(w);
            v.snap(w);
        }
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let len = r.len_prefix("map length")?;
        let mut out = BTreeMap::new();
        for _ in 0..len {
            let k = K::unsnap(r)?;
            let v = V::unsnap(r)?;
            out.insert(k, v);
        }
        Ok(out)
    }
}

impl<T: Snap + Ord> Snap for BTreeSet<T> {
    fn snap(&self, w: &mut SnapWriter) {
        w.u64(self.len() as u64);
        for item in self {
            item.snap(w);
        }
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let len = r.len_prefix("set length")?;
        let mut out = BTreeSet::new();
        for _ in 0..len {
            out.insert(T::unsnap(r)?);
        }
        Ok(out)
    }
}

impl<A: Snap, B: Snap> Snap for (A, B) {
    fn snap(&self, w: &mut SnapWriter) {
        self.0.snap(w);
        self.1.snap(w);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok((A::unsnap(r)?, B::unsnap(r)?))
    }
}

impl<A: Snap, B: Snap, C: Snap> Snap for (A, B, C) {
    fn snap(&self, w: &mut SnapWriter) {
        self.0.snap(w);
        self.1.snap(w);
        self.2.snap(w);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok((A::unsnap(r)?, B::unsnap(r)?, C::unsnap(r)?))
    }
}

impl<A: Snap, B: Snap, C: Snap, D: Snap> Snap for (A, B, C, D) {
    fn snap(&self, w: &mut SnapWriter) {
        self.0.snap(w);
        self.1.snap(w);
        self.2.snap(w);
        self.3.snap(w);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok((A::unsnap(r)?, B::unsnap(r)?, C::unsnap(r)?, D::unsnap(r)?))
    }
}

impl Snap for crate::SimTime {
    fn snap(&self, w: &mut SnapWriter) {
        w.u64(self.as_millis());
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(crate::SimTime::from_millis(r.u64("SimTime")?))
    }
}

impl Snap for crate::Duration {
    fn snap(&self, w: &mut SnapWriter) {
        w.u64(self.as_millis());
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(crate::Duration::from_millis(r.u64("Duration")?))
    }
}

macro_rules! snap_raw_id {
    ($($id:ident),*) => {$(
        impl Snap for crate::$id {
            fn snap(&self, w: &mut SnapWriter) {
                w.u64(self.0);
            }
            fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
                Ok(crate::$id(r.u64(stringify!($id))?))
            }
        }
    )*};
}

snap_raw_id!(JobId, ShardId, ContainerId, HostId, PartitionId);

impl Snap for crate::TaskId {
    fn snap(&self, w: &mut SnapWriter) {
        w.u64(self.job.0);
        w.u32(self.index);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(crate::TaskId {
            job: crate::JobId(r.u64("TaskId.job")?),
            index: r.u32("TaskId.index")?,
        })
    }
}

impl Snap for crate::Priority {
    fn snap(&self, w: &mut SnapWriter) {
        let tag = match self {
            crate::Priority::Low => 0u8,
            crate::Priority::Normal => 1,
            crate::Priority::High => 2,
            crate::Priority::Privileged => 3,
        };
        w.u8(tag);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        match r.u8("Priority")? {
            0 => Ok(crate::Priority::Low),
            1 => Ok(crate::Priority::Normal),
            2 => Ok(crate::Priority::High),
            3 => Ok(crate::Priority::Privileged),
            tag => Err(SnapError::Tag("Priority", tag as u64)),
        }
    }
}

impl Snap for crate::Resources {
    fn snap(&self, w: &mut SnapWriter) {
        w.put(&self.cpu);
        w.put(&self.memory_mb);
        w.put(&self.disk_mb);
        w.put(&self.network_mbps);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(crate::Resources {
            cpu: r.get()?,
            memory_mb: r.get()?,
            disk_mb: r.get()?,
            network_mbps: r.get()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Snap + PartialEq + std::fmt::Debug>(v: T) {
        let mut w = SnapWriter::new();
        w.put(&v);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        let back: T = r.get().expect("decode");
        r.expect_end().expect("fully consumed");
        assert_eq!(back, v);
    }

    #[test]
    fn scalars_roundtrip() {
        roundtrip(0u8);
        roundtrip(u32::MAX);
        roundtrip(u64::MAX);
        roundtrip(-42i64);
        roundtrip(usize::MAX);
        roundtrip(true);
        roundtrip(f64::NEG_INFINITY);
        roundtrip("héllo".to_string());
    }

    #[test]
    fn nan_bits_survive() {
        let weird = f64::from_bits(0x7FF8_0000_0000_1234);
        let mut w = SnapWriter::new();
        w.put(&weird);
        let bytes = w.into_bytes();
        let back: f64 = SnapReader::new(&bytes).get().expect("decode");
        assert_eq!(back.to_bits(), weird.to_bits());
    }

    #[test]
    fn collections_roundtrip() {
        roundtrip(vec![1u64, 2, 3]);
        roundtrip(Some(vec!["a".to_string()]));
        roundtrip(Option::<u64>::None);
        let mut map = BTreeMap::new();
        map.insert("k".to_string(), 7u64);
        roundtrip(map);
        let set: BTreeSet<u64> = [3, 1, 2].into_iter().collect();
        roundtrip(set);
        let deque: VecDeque<u32> = [9, 8].into_iter().collect();
        roundtrip(deque);
        roundtrip((1u64, "x".to_string(), false));
    }

    #[test]
    fn domain_types_roundtrip() {
        roundtrip(crate::SimTime::from_millis(123_456));
        roundtrip(crate::Duration::from_millis(789));
        roundtrip(crate::JobId(7));
        roundtrip(crate::TaskId {
            job: crate::JobId(7),
            index: 3,
        });
        roundtrip(crate::Priority::Privileged);
        roundtrip(crate::Resources::new(1.5, 2.5, 3.5, 4.5));
    }

    #[test]
    fn truncation_is_a_clean_error() {
        let mut w = SnapWriter::new();
        w.put(&vec![1u64, 2, 3]);
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            let mut r = SnapReader::new(&bytes[..cut]);
            assert!(
                Vec::<u64>::unsnap(&mut r).is_err(),
                "cut at {cut} must fail"
            );
        }
    }

    #[test]
    fn corrupt_length_prefix_is_rejected_without_allocation() {
        let mut w = SnapWriter::new();
        w.u64(u64::MAX); // absurd length
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        assert!(matches!(Vec::<u64>::unsnap(&mut r), Err(SnapError::Eof(_))));
    }

    #[test]
    fn bad_tags_are_rejected() {
        let bytes = [9u8];
        assert!(matches!(
            bool::unsnap(&mut SnapReader::new(&bytes)),
            Err(SnapError::Tag("bool", 9))
        ));
        assert!(matches!(
            crate::Priority::unsnap(&mut SnapReader::new(&bytes)),
            Err(SnapError::Tag("Priority", 9))
        ));
        assert!(matches!(
            Option::<u64>::unsnap(&mut SnapReader::new(&bytes)),
            Err(SnapError::Tag("option", 9))
        ));
    }
}
