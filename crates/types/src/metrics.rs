//! Metric primitives: time series, percentile summaries, CDFs.
//!
//! The paper's evaluation reports p5/p50/p95 utilization bands (Fig. 6, 7),
//! CDFs of per-task footprints (Fig. 5), and long-horizon series of traffic
//! and task counts (Fig. 1, 8, 9). These light-weight recorders back all of
//! those without any external dependency.
//!
//! [`TimeSeries`] is **bounded**: it keeps an exact tail of recent samples
//! and deterministically downsamples older history into aggregate
//! [`SeriesBucket`]s, so a multi-day soak (or the ODS registry, which keeps
//! one series per metric per job) cannot grow memory without bound.

use crate::snap::{Snap, SnapError, SnapReader, SnapWriter};
use crate::time::SimTime;

/// A monotonically increasing event counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// Increment by one.
    pub fn incr(&mut self) {
        self.0 += 1;
    }

    /// Increment by `n`.
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current count.
    pub fn get(self) -> u64 {
        self.0
    }
}

/// A point-in-time measured value.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Gauge(f64);

impl Gauge {
    /// Replace the current value.
    pub fn set(&mut self, v: f64) {
        self.0 = v;
    }

    /// Current value.
    pub fn get(self) -> f64 {
        self.0
    }
}

/// One compacted span of downsampled history: the aggregate of a run of
/// consecutive samples that have been evicted from the exact tail.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SeriesBucket {
    /// Time of the first sample folded into this bucket.
    pub start: SimTime,
    /// Time of the last sample folded into this bucket.
    pub end: SimTime,
    /// Sum of the folded sample values.
    pub sum: f64,
    /// Number of folded samples.
    pub count: u64,
    /// Smallest folded sample value.
    pub min: f64,
    /// Largest folded sample value.
    pub max: f64,
    /// Value of the last folded sample.
    pub last: f64,
}

impl SeriesBucket {
    fn from_point(at: SimTime, v: f64) -> Self {
        SeriesBucket {
            start: at,
            end: at,
            sum: v,
            count: 1,
            min: v,
            max: v,
            last: v,
        }
    }

    fn absorb_point(&mut self, at: SimTime, v: f64) {
        self.end = at;
        self.sum += v;
        self.count += 1;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.last = v;
    }

    fn merge(&mut self, other: &SeriesBucket) {
        self.end = other.end;
        self.sum += other.sum;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.last = other.last;
    }
}

/// Default exact-tail capacity: a 48-hour soak at the default 1-minute
/// metric cadence (2 880 samples) fits entirely in the tail, so existing
/// figure/bench consumers see identical data, while indefinitely long runs
/// stay bounded.
pub const DEFAULT_SERIES_CAPACITY: usize = 4096;

/// Smallest accepted exact-tail capacity (the compaction step drains the
/// older half in pairs, which needs a few points to be meaningful).
const MIN_SERIES_CAPACITY: usize = 8;

/// A bounded series of timestamped samples: an exact recent tail plus a
/// deterministically downsampled head.
///
/// Samples are appended in non-decreasing time order. While fewer than the
/// configured capacity have been recorded, the series is exact. Once the
/// tail fills, its older half is folded pairwise into [`SeriesBucket`]
/// aggregates; when the bucket head itself fills, adjacent buckets are
/// pair-merged (doubling their span). The compaction schedule depends only
/// on the sample sequence, so two identical runs produce identical series.
///
/// Window queries are exact over the tail; over compacted history they
/// count a bucket iff it lies entirely inside the window (bucket
/// granularity, conservative). Full-range queries are exact for mean and
/// max because sums/counts/maxima are preserved under merging.
#[derive(Debug, Clone)]
pub struct TimeSeries {
    raw: Vec<(SimTime, f64)>,
    head: Vec<SeriesBucket>,
    raw_capacity: usize,
    head_capacity: usize,
    total: u64,
}

impl Default for TimeSeries {
    fn default() -> Self {
        Self::with_capacity(DEFAULT_SERIES_CAPACITY)
    }
}

impl TimeSeries {
    /// Empty series with the default bounded capacity.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty series retaining at most `capacity` exact samples (clamped to
    /// a small minimum); older history is downsampled into at most
    /// `capacity / 2` aggregate buckets. Memory stays proportional to
    /// `capacity` no matter how many samples are recorded.
    pub fn with_capacity(capacity: usize) -> Self {
        let raw_capacity = capacity.max(MIN_SERIES_CAPACITY);
        TimeSeries {
            raw: Vec::new(),
            head: Vec::new(),
            raw_capacity,
            head_capacity: (raw_capacity / 2).max(1),
            total: 0,
        }
    }

    /// Append a sample. Samples should arrive in non-decreasing time order
    /// (the simulator guarantees this); queries assume it.
    pub fn record(&mut self, at: SimTime, value: f64) {
        debug_assert!(
            self.raw.last().is_none_or(|&(t, _)| t <= at),
            "samples must be appended in time order"
        );
        if self.raw.len() >= self.raw_capacity {
            self.compact();
        }
        self.raw.push((at, value));
        self.total += 1;
    }

    /// Fold the older half of the exact tail into pairwise buckets, then
    /// pair-merge the bucket head (doubling bucket spans) until it fits.
    fn compact(&mut self) {
        let drain_n = (self.raw_capacity / 2).max(2) & !1;
        for pair in self.raw[..drain_n].chunks(2) {
            let mut bucket = SeriesBucket::from_point(pair[0].0, pair[0].1);
            if let Some(&(t, v)) = pair.get(1) {
                bucket.absorb_point(t, v);
            }
            self.head.push(bucket);
        }
        self.raw.drain(..drain_n);
        while self.head.len() > self.head_capacity {
            let merged: Vec<SeriesBucket> = self
                .head
                .chunks(2)
                .map(|pair| {
                    let mut b = pair[0];
                    if let Some(next) = pair.get(1) {
                        b.merge(next);
                    }
                    b
                })
                .collect();
            self.head = merged;
        }
    }

    /// The exact recent samples still retained, in time order. Until the
    /// series exceeds its capacity this is every sample ever recorded;
    /// afterwards older history lives in [`Self::buckets`].
    pub fn points(&self) -> &[(SimTime, f64)] {
        &self.raw
    }

    /// The downsampled aggregate buckets covering history older than the
    /// exact tail, in time order (empty until compaction first runs).
    pub fn buckets(&self) -> &[SeriesBucket] {
        &self.head
    }

    /// Number of samples ever recorded (including downsampled ones).
    pub fn len(&self) -> usize {
        self.total as usize
    }

    /// True if no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Most recent sample value, if any.
    pub fn last(&self) -> Option<f64> {
        self.raw
            .last()
            .map(|&(_, v)| v)
            .or_else(|| self.head.last().map(|b| b.last))
    }

    /// Time of the most recent sample, if any.
    pub fn last_at(&self) -> Option<SimTime> {
        self.raw
            .last()
            .map(|&(t, _)| t)
            .or_else(|| self.head.last().map(|b| b.end))
    }

    /// Mean of samples with `start <= t < end`; `None` if the window is
    /// empty. Exact over the retained tail; compacted buckets contribute
    /// their sum/count iff they lie entirely inside the window. Used e.g.
    /// for "average input rate in the last 30 minutes" (paper §V-C).
    pub fn mean_in_window(&self, start: SimTime, end: SimTime) -> Option<f64> {
        let mut sum = 0.0;
        let mut n = 0u64;
        for &(t, v) in self.raw.iter().rev() {
            if t >= end {
                continue;
            }
            if t < start {
                break;
            }
            sum += v;
            n += 1;
        }
        for b in self.head.iter().rev() {
            if b.end >= end {
                continue;
            }
            if b.start < start {
                break;
            }
            sum += b.sum;
            n += b.count;
        }
        (n > 0).then(|| sum / n as f64)
    }

    /// Maximum sample value in `start <= t < end`. Exact over the retained
    /// tail; compacted buckets contribute their max iff entirely inside
    /// the window.
    pub fn max_in_window(&self, start: SimTime, end: SimTime) -> Option<f64> {
        let mut max: Option<f64> = None;
        for &(t, v) in self.raw.iter().rev() {
            if t >= end {
                continue;
            }
            if t < start {
                break;
            }
            max = Some(max.map_or(v, |m: f64| m.max(v)));
        }
        for b in self.head.iter().rev() {
            if b.end >= end {
                continue;
            }
            if b.start < start {
                break;
            }
            max = Some(max.map_or(b.max, |m: f64| m.max(b.max)));
        }
        max
    }

    /// Value of the latest sample at or before `at`. Exact within the
    /// retained tail; in compacted history the resolution degrades to
    /// bucket granularity (the containing bucket's last value).
    pub fn value_at(&self, at: SimTime) -> Option<f64> {
        if let Some(&(t0, _)) = self.raw.first() {
            if at >= t0 {
                return match self.raw.binary_search_by_key(&at, |&(t, _)| t) {
                    Ok(i) => Some(self.raw[i].1),
                    Err(0) => None,
                    Err(i) => Some(self.raw[i - 1].1),
                };
            }
        }
        let i = self.head.partition_point(|b| b.start <= at);
        (i > 0).then(|| self.head[i - 1].last)
    }
}

/// Percentile summary of a set of samples.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Percentiles {
    /// 5th percentile.
    pub p5: f64,
    /// Median.
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// Arithmetic mean.
    pub mean: f64,
}

/// Snapshot size above which [`Percentiles::from_samples`] switches from a
/// full sort to O(n) selection. Below it the sort path is kept verbatim so
/// small-fleet runs stay bit-for-bit identical (the sorted-order mean sum
/// rounds differently from an input-order sum).
const SELECT_THRESHOLD: usize = 1024;

impl Percentiles {
    /// Compute p5/p50/p95/mean from `samples`. Returns the zero summary for
    /// an empty input. Uses the nearest-rank method: a sorted copy for
    /// small snapshots, and O(n) selection of the three order statistics
    /// for snapshots past `SELECT_THRESHOLD` — at 100k-host scale a full
    /// O(n log n) sort per dashboard render dominates the sample pass. The
    /// selected ranks are exactly the sort path's (the nearest-rank value
    /// is a unique order statistic); only the mean's summation order
    /// differs at large n.
    pub fn from_samples(samples: &[f64]) -> Percentiles {
        if samples.is_empty() {
            return Percentiles::default();
        }
        if samples.len() <= SELECT_THRESHOLD {
            let mut sorted: Vec<f64> = samples.to_vec();
            sorted.sort_by(|a, b| a.partial_cmp(b).expect("metric samples must not be NaN"));
            let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
            return Percentiles {
                p5: nearest_rank(&sorted, 0.05),
                p50: nearest_rank(&sorted, 0.50),
                p95: nearest_rank(&sorted, 0.95),
                mean,
            };
        }
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let mut scratch: Vec<f64> = samples.to_vec();
        let n = scratch.len();
        let cmp = |a: &f64, b: &f64| a.partial_cmp(b).expect("metric samples must not be NaN");
        // Select the highest rank first; each later selection works on the
        // "everything <= previous pivot" prefix the partition left behind.
        let i95 = nearest_rank_index(n, 0.95);
        let i50 = nearest_rank_index(n, 0.50);
        let i5 = nearest_rank_index(n, 0.05);
        let (_, &mut p95, _) = scratch.select_nth_unstable_by(i95, cmp);
        let (_, &mut p50, _) = scratch[..i95].select_nth_unstable_by(i50, cmp);
        let (_, &mut p5, _) = scratch[..i50.max(1)].select_nth_unstable_by(i5, cmp);
        Percentiles { p5, p50, p95, mean }
    }
}

/// 0-based index of the nearest-rank percentile in a sorted collection of
/// `n` samples. This is **the** quantile rank used everywhere in the
/// workspace — [`Percentiles`], [`Cdf`], and the dashboard's per-tier
/// recovery quantiles all share it, so their answers agree bit for bit.
pub fn nearest_rank_index(n: usize, q: f64) -> usize {
    ((q * n as f64).ceil() as usize).clamp(1, n) - 1
}

/// Nearest-rank percentile of an already-sorted slice (must be non-empty).
pub fn nearest_rank(sorted: &[f64], q: f64) -> f64 {
    debug_assert!(!sorted.is_empty());
    sorted[nearest_rank_index(sorted.len(), q)]
}

/// Nearest-rank percentile of an already-sorted `u64` slice (must be
/// non-empty) — the integer twin of [`nearest_rank`], for millisecond
/// durations kept sorted incrementally (per-tier recovery vectors).
pub fn nearest_rank_u64(sorted: &[u64], q: f64) -> u64 {
    debug_assert!(!sorted.is_empty());
    sorted[nearest_rank_index(sorted.len(), q)]
}

/// An empirical cumulative distribution function.
#[derive(Debug, Clone)]
pub struct Cdf {
    sorted: Vec<f64>,
}

impl Cdf {
    /// Build from raw samples (NaNs are rejected with a panic since they
    /// indicate a modelling bug upstream).
    pub fn from_samples(samples: &[f64]) -> Cdf {
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("CDF samples must not be NaN"));
        Cdf { sorted }
    }

    /// Fraction of samples `<= x`.
    pub fn fraction_at_or_below(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let n = self.sorted.partition_point(|&v| v <= x);
        n as f64 / self.sorted.len() as f64
    }

    /// Inverse CDF: smallest sample value v such that a fraction `q` of
    /// samples are `<= v`.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.sorted.is_empty() {
            return None;
        }
        Some(nearest_rank(&self.sorted, q.clamp(0.0, 1.0)))
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True if built from no samples.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Evaluate the CDF at evenly spaced x positions between the min and
    /// max sample — the series the figure-generation binaries print.
    pub fn curve(&self, steps: usize) -> Vec<(f64, f64)> {
        if self.sorted.is_empty() || steps == 0 {
            return Vec::new();
        }
        let lo = self.sorted[0];
        let hi = *self.sorted.last().expect("non-empty");
        (0..=steps)
            .map(|i| {
                let x = lo + (hi - lo) * i as f64 / steps as f64;
                (x, self.fraction_at_or_below(x))
            })
            .collect()
    }
}

impl Snap for Counter {
    fn snap(&self, w: &mut SnapWriter) {
        w.u64(self.0);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(Counter(r.u64("Counter")?))
    }
}

impl Snap for Gauge {
    fn snap(&self, w: &mut SnapWriter) {
        w.put(&self.0);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(Gauge(r.get()?))
    }
}

impl Snap for SeriesBucket {
    fn snap(&self, w: &mut SnapWriter) {
        w.put(&self.start);
        w.put(&self.end);
        w.put(&self.sum);
        w.u64(self.count);
        w.put(&self.min);
        w.put(&self.max);
        w.put(&self.last);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(SeriesBucket {
            start: r.get()?,
            end: r.get()?,
            sum: r.get()?,
            count: r.u64("SeriesBucket.count")?,
            min: r.get()?,
            max: r.get()?,
            last: r.get()?,
        })
    }
}

impl Snap for TimeSeries {
    fn snap(&self, w: &mut SnapWriter) {
        w.put(&self.raw);
        w.put(&self.head);
        w.put(&self.raw_capacity);
        w.put(&self.head_capacity);
        w.u64(self.total);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(TimeSeries {
            raw: r.get()?,
            head: r.get()?,
            raw_capacity: r.get()?,
            head_capacity: r.get()?,
            total: r.u64("TimeSeries.total")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Duration;

    fn t(secs: u64) -> SimTime {
        SimTime::ZERO + Duration::from_secs(secs)
    }

    #[test]
    fn empty_samples_yield_the_finite_zero_summary() {
        // Regression: an empty snapshot must not produce NaN (a naive
        // mean would be 0/0). Callers that want "no sample" semantics
        // must skip recording instead.
        let p = Percentiles::from_samples(&[]);
        assert_eq!(p, Percentiles::default());
        for v in [p.p5, p.p50, p.p95, p.mean] {
            assert!(v.is_finite());
        }
    }

    #[test]
    fn counter_and_gauge_basics() {
        let mut c = Counter::default();
        c.incr();
        c.add(4);
        assert_eq!(c.get(), 5);
        let mut g = Gauge::default();
        g.set(3.5);
        assert_eq!(g.get(), 3.5);
    }

    #[test]
    fn timeseries_window_queries() {
        let mut ts = TimeSeries::new();
        for (sec, v) in [(0, 1.0), (10, 2.0), (20, 3.0), (30, 4.0)] {
            ts.record(t(sec), v);
        }
        assert_eq!(ts.last(), Some(4.0));
        assert_eq!(ts.mean_in_window(t(10), t(30)), Some(2.5));
        assert_eq!(ts.max_in_window(t(0), t(31)), Some(4.0));
        assert_eq!(ts.mean_in_window(t(100), t(200)), None);
    }

    #[test]
    fn timeseries_value_at_finds_latest_before() {
        let mut ts = TimeSeries::new();
        ts.record(t(10), 1.0);
        ts.record(t(20), 2.0);
        assert_eq!(ts.value_at(t(5)), None);
        assert_eq!(ts.value_at(t(10)), Some(1.0));
        assert_eq!(ts.value_at(t(15)), Some(1.0));
        assert_eq!(ts.value_at(t(25)), Some(2.0));
    }

    #[test]
    fn timeseries_compacts_past_capacity() {
        let mut ts = TimeSeries::with_capacity(16);
        for i in 0..100u64 {
            ts.record(t(i * 10), i as f64);
        }
        // Bounded storage, full logical length.
        assert!(ts.points().len() <= 16);
        assert!(ts.buckets().len() <= 8);
        assert_eq!(ts.len(), 100);
        assert_eq!(ts.last(), Some(99.0));
        assert_eq!(ts.last_at(), Some(t(990)));
        // Full-range aggregates survive compaction exactly.
        let mean = ts.mean_in_window(SimTime::ZERO, t(10_000)).expect("mean");
        assert!((mean - 49.5).abs() < 1e-9);
        assert_eq!(ts.max_in_window(SimTime::ZERO, t(10_000)), Some(99.0));
        // Recent-window queries stay exact.
        assert_eq!(ts.mean_in_window(t(970), t(1000)), Some(98.0));
        assert_eq!(ts.value_at(t(985)), Some(98.0));
        // Old lookups degrade to bucket granularity but stay in range.
        let old = ts.value_at(t(100)).expect("covered by compacted history");
        assert!((0.0..=99.0).contains(&old));
    }

    #[test]
    fn timeseries_total_counts_are_preserved_under_merging() {
        let mut ts = TimeSeries::with_capacity(8);
        for i in 0..10_000u64 {
            ts.record(t(i), 1.0);
        }
        assert_eq!(ts.len(), 10_000);
        let retained_raw = ts.points().len() as u64;
        let bucketed: u64 = ts.buckets().iter().map(|b| b.count).sum();
        assert_eq!(retained_raw + bucketed, 10_000);
        assert!(ts.buckets().len() <= 4);
    }

    #[test]
    fn percentiles_of_uniform_ramp() {
        let samples: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let p = Percentiles::from_samples(&samples);
        assert_eq!(p.p5, 5.0);
        assert_eq!(p.p50, 50.0);
        assert_eq!(p.p95, 95.0);
        assert!((p.mean - 50.5).abs() < 1e-9);
    }

    #[test]
    fn percentiles_of_empty_and_singleton() {
        assert_eq!(Percentiles::from_samples(&[]), Percentiles::default());
        let p = Percentiles::from_samples(&[7.0]);
        assert_eq!((p.p5, p.p50, p.p95), (7.0, 7.0, 7.0));
    }

    #[test]
    fn nearest_rank_variants_agree() {
        let as_u64 = [1u64, 5, 7, 7, 33, 90, 120];
        let as_f64: Vec<f64> = as_u64.iter().map(|&v| v as f64).collect();
        for q in [0.0, 0.01, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(
                nearest_rank_u64(&as_u64, q),
                nearest_rank(&as_f64, q) as u64,
                "u64 and f64 nearest-rank must agree at q={q}"
            );
        }
        assert_eq!(nearest_rank_index(1, 0.0), 0);
        assert_eq!(nearest_rank_index(1, 1.0), 0);
        assert_eq!(nearest_rank_index(100, 0.95), 94);
    }

    #[test]
    fn selection_path_matches_the_sort_path() {
        // Reference implementation: the pre-selection full-sort path.
        fn reference(samples: &[f64]) -> Percentiles {
            let mut sorted = samples.to_vec();
            sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
            Percentiles {
                p5: nearest_rank(&sorted, 0.05),
                p50: nearest_rank(&sorted, 0.50),
                p95: nearest_rank(&sorted, 0.95),
                mean: sorted.iter().sum::<f64>() / sorted.len() as f64,
            }
        }
        // Deterministic pseudo-random snapshot well past SELECT_THRESHOLD,
        // with duplicates, plus a couple of boundary sizes.
        for n in [
            SELECT_THRESHOLD - 1,
            SELECT_THRESHOLD,
            SELECT_THRESHOLD + 1,
            10_000,
        ] {
            let mut x = 0x9E3779B97F4A7C15u64;
            let samples: Vec<f64> = (0..n)
                .map(|_| {
                    x = x
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    ((x >> 33) % 1000) as f64 / 10.0
                })
                .collect();
            let fast = Percentiles::from_samples(&samples);
            let slow = reference(&samples);
            // The percentile ranks are unique order statistics: exact.
            assert_eq!(fast.p5, slow.p5, "p5 at n={n}");
            assert_eq!(fast.p50, slow.p50, "p50 at n={n}");
            assert_eq!(fast.p95, slow.p95, "p95 at n={n}");
            // The mean may differ only by summation order.
            assert!((fast.mean - slow.mean).abs() < 1e-9 * slow.mean.abs().max(1.0));
            // At or below the threshold the whole summary is bit-identical.
            if n <= SELECT_THRESHOLD {
                assert_eq!(fast, slow);
            }
        }
    }

    #[test]
    fn cdf_fraction_and_quantile_agree() {
        let samples: Vec<f64> = (1..=10).map(|i| i as f64).collect();
        let cdf = Cdf::from_samples(&samples);
        assert_eq!(cdf.fraction_at_or_below(5.0), 0.5);
        assert_eq!(cdf.fraction_at_or_below(0.0), 0.0);
        assert_eq!(cdf.fraction_at_or_below(100.0), 1.0);
        assert_eq!(cdf.quantile(0.5), Some(5.0));
        let curve = cdf.curve(9);
        assert_eq!(curve.len(), 10);
        assert_eq!(curve[0].0, 1.0);
        assert_eq!(curve[9], (10.0, 1.0));
    }

    #[test]
    fn cdf_empty_is_well_behaved() {
        let cdf = Cdf::from_samples(&[]);
        assert!(cdf.is_empty());
        assert_eq!(cdf.quantile(0.5), None);
        assert_eq!(cdf.fraction_at_or_below(1.0), 0.0);
        assert!(cdf.curve(10).is_empty());
    }
}
