//! Multi-dimensional resource vectors.
//!
//! Turbine adjusts allocation in multiple dimensions (CPU, memory, disk,
//! network — §I, §V of the paper). [`Resources`] is the vector type used for
//! container capacities, shard loads, task reservations, and scaler
//! estimates. All arithmetic is element-wise.

use std::fmt;
use std::ops::{Add, AddAssign, Mul, Sub, SubAssign};

/// One resource dimension.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ResourceKind {
    /// CPU, in cores (fractional).
    Cpu,
    /// Memory, in megabytes.
    MemoryMb,
    /// Disk, in megabytes.
    DiskMb,
    /// Network bandwidth, in megabytes per second.
    NetworkMbps,
}

impl ResourceKind {
    /// All dimensions, in canonical order.
    pub const ALL: [ResourceKind; 4] = [
        ResourceKind::Cpu,
        ResourceKind::MemoryMb,
        ResourceKind::DiskMb,
        ResourceKind::NetworkMbps,
    ];
}

impl fmt::Display for ResourceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ResourceKind::Cpu => "cpu",
            ResourceKind::MemoryMb => "memory_mb",
            ResourceKind::DiskMb => "disk_mb",
            ResourceKind::NetworkMbps => "network_mbps",
        };
        f.write_str(s)
    }
}

/// A vector of resource quantities, one per [`ResourceKind`].
///
/// Quantities are non-negative `f64`s; subtraction saturates at zero so that
/// "remaining capacity" computations never go negative.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Resources {
    /// CPU cores.
    pub cpu: f64,
    /// Memory in MB.
    pub memory_mb: f64,
    /// Disk in MB.
    pub disk_mb: f64,
    /// Network bandwidth in MB/s.
    pub network_mbps: f64,
}

impl Resources {
    /// The zero vector.
    pub const ZERO: Resources = Resources {
        cpu: 0.0,
        memory_mb: 0.0,
        disk_mb: 0.0,
        network_mbps: 0.0,
    };

    /// Construct with every dimension explicit.
    pub const fn new(cpu: f64, memory_mb: f64, disk_mb: f64, network_mbps: f64) -> Self {
        Resources {
            cpu,
            memory_mb,
            disk_mb,
            network_mbps,
        }
    }

    /// A CPU-and-memory-only vector (the common case for streaming tasks).
    pub const fn cpu_mem(cpu: f64, memory_mb: f64) -> Self {
        Resources::new(cpu, memory_mb, 0.0, 0.0)
    }

    /// Quantity of one dimension.
    pub fn get(&self, kind: ResourceKind) -> f64 {
        match kind {
            ResourceKind::Cpu => self.cpu,
            ResourceKind::MemoryMb => self.memory_mb,
            ResourceKind::DiskMb => self.disk_mb,
            ResourceKind::NetworkMbps => self.network_mbps,
        }
    }

    /// Set one dimension.
    pub fn set(&mut self, kind: ResourceKind, value: f64) {
        match kind {
            ResourceKind::Cpu => self.cpu = value,
            ResourceKind::MemoryMb => self.memory_mb = value,
            ResourceKind::DiskMb => self.disk_mb = value,
            ResourceKind::NetworkMbps => self.network_mbps = value,
        }
    }

    /// True if every dimension of `self` fits within `capacity`.
    pub fn fits_within(&self, capacity: &Resources) -> bool {
        self.cpu <= capacity.cpu
            && self.memory_mb <= capacity.memory_mb
            && self.disk_mb <= capacity.disk_mb
            && self.network_mbps <= capacity.network_mbps
    }

    /// Element-wise maximum.
    pub fn max(&self, other: &Resources) -> Resources {
        Resources {
            cpu: self.cpu.max(other.cpu),
            memory_mb: self.memory_mb.max(other.memory_mb),
            disk_mb: self.disk_mb.max(other.disk_mb),
            network_mbps: self.network_mbps.max(other.network_mbps),
        }
    }

    /// Element-wise minimum.
    pub fn min(&self, other: &Resources) -> Resources {
        Resources {
            cpu: self.cpu.min(other.cpu),
            memory_mb: self.memory_mb.min(other.memory_mb),
            disk_mb: self.disk_mb.min(other.disk_mb),
            network_mbps: self.network_mbps.min(other.network_mbps),
        }
    }

    /// Scale every dimension by `factor`.
    pub fn scale(&self, factor: f64) -> Resources {
        Resources {
            cpu: self.cpu * factor,
            memory_mb: self.memory_mb * factor,
            disk_mb: self.disk_mb * factor,
            network_mbps: self.network_mbps * factor,
        }
    }

    /// The highest utilization fraction across dimensions when `self` is
    /// the load and `capacity` the available resources. Dimensions with
    /// zero capacity are skipped (they carry no constraint).
    ///
    /// This is the "dominant resource" used by the load balancer to compare
    /// container loads of different shapes.
    pub fn dominant_utilization(&self, capacity: &Resources) -> f64 {
        let mut util: f64 = 0.0;
        for kind in ResourceKind::ALL {
            let cap = capacity.get(kind);
            if cap > 0.0 {
                util = util.max(self.get(kind) / cap);
            }
        }
        util
    }

    /// True if every dimension is (approximately) zero.
    pub fn is_zero(&self) -> bool {
        self.cpu == 0.0 && self.memory_mb == 0.0 && self.disk_mb == 0.0 && self.network_mbps == 0.0
    }

    /// True if no dimension is negative. Saturating subtraction preserves
    /// this invariant; it is asserted in debug builds.
    pub fn is_non_negative(&self) -> bool {
        self.cpu >= 0.0 && self.memory_mb >= 0.0 && self.disk_mb >= 0.0 && self.network_mbps >= 0.0
    }
}

impl Add for Resources {
    type Output = Resources;
    fn add(self, rhs: Resources) -> Resources {
        Resources {
            cpu: self.cpu + rhs.cpu,
            memory_mb: self.memory_mb + rhs.memory_mb,
            disk_mb: self.disk_mb + rhs.disk_mb,
            network_mbps: self.network_mbps + rhs.network_mbps,
        }
    }
}

impl AddAssign for Resources {
    fn add_assign(&mut self, rhs: Resources) {
        *self = *self + rhs;
    }
}

impl Sub for Resources {
    type Output = Resources;
    /// Element-wise saturating subtraction: never yields negatives.
    fn sub(self, rhs: Resources) -> Resources {
        Resources {
            cpu: (self.cpu - rhs.cpu).max(0.0),
            memory_mb: (self.memory_mb - rhs.memory_mb).max(0.0),
            disk_mb: (self.disk_mb - rhs.disk_mb).max(0.0),
            network_mbps: (self.network_mbps - rhs.network_mbps).max(0.0),
        }
    }
}

impl SubAssign for Resources {
    fn sub_assign(&mut self, rhs: Resources) {
        *self = *self - rhs;
    }
}

impl Mul<f64> for Resources {
    type Output = Resources;
    fn mul(self, rhs: f64) -> Resources {
        self.scale(rhs)
    }
}

impl std::iter::Sum for Resources {
    fn sum<I: Iterator<Item = Resources>>(iter: I) -> Resources {
        iter.fold(Resources::ZERO, |acc, r| acc + r)
    }
}

impl fmt::Display for Resources {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cpu={:.2} mem={:.0}MB disk={:.0}MB net={:.1}MB/s",
            self.cpu, self.memory_mb, self.disk_mb, self.network_mbps
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_is_elementwise() {
        let a = Resources::new(1.0, 100.0, 10.0, 5.0);
        let b = Resources::new(0.5, 50.0, 5.0, 2.5);
        assert_eq!(a + b, Resources::new(1.5, 150.0, 15.0, 7.5));
        assert_eq!(a - b, b);
        assert_eq!(a.scale(2.0), Resources::new(2.0, 200.0, 20.0, 10.0));
    }

    #[test]
    fn subtraction_saturates() {
        let a = Resources::cpu_mem(1.0, 100.0);
        let b = Resources::cpu_mem(2.0, 50.0);
        let d = a - b;
        assert_eq!(d.cpu, 0.0);
        assert_eq!(d.memory_mb, 50.0);
        assert!(d.is_non_negative());
    }

    #[test]
    fn fits_within_checks_every_dimension() {
        let cap = Resources::new(4.0, 1000.0, 100.0, 50.0);
        assert!(Resources::cpu_mem(4.0, 1000.0).fits_within(&cap));
        assert!(!Resources::cpu_mem(4.1, 1.0).fits_within(&cap));
        assert!(!Resources::new(0.0, 0.0, 101.0, 0.0).fits_within(&cap));
    }

    #[test]
    fn dominant_utilization_picks_tightest_dimension() {
        let cap = Resources::new(10.0, 1000.0, 0.0, 0.0);
        let load = Resources::cpu_mem(2.0, 900.0);
        // memory is 90% utilized, cpu only 20% — dominant is 0.9. The zero
        // disk/network capacities are ignored.
        assert!((load.dominant_utilization(&cap) - 0.9).abs() < 1e-12);
    }

    #[test]
    fn get_set_roundtrip() {
        let mut r = Resources::ZERO;
        for kind in ResourceKind::ALL {
            r.set(kind, 42.0);
            assert_eq!(r.get(kind), 42.0);
        }
    }

    #[test]
    fn sum_of_empty_iterator_is_zero() {
        let total: Resources = std::iter::empty().sum();
        assert!(total.is_zero());
    }
}
