//! The Job Store and Job Service (paper §III-A, Table I).
//!
//! The Job Management layer maintains two tables:
//!
//! * the **Expected Job Table** — four layered configuration levels per job
//!   (Base, Provisioner, Scaler, Oncall), each with its own version counter
//!   so concurrent writers get read-modify-write consistency;
//! * the **Running Job Table** — the actual settings of the currently
//!   running jobs, committed only by the State Syncer after an execution
//!   plan succeeds.
//!
//! Durability comes from an append-only write-ahead log: every mutation is
//! logged before it is applied, and [`store::JobStore::recover`] rebuilds
//! the exact tables from the log. The [`service::JobService`] wraps the
//! store with the retrying read-modify-write loop components actually use.

pub mod service;
pub mod store;
pub mod wal;

pub use service::JobService;
pub use store::{JobStore, JobStoreError, WalSalvage};
pub use wal::{FileWal, MemWal, WalError, WalStorage};
