//! Write-ahead logging for the Job Store.
//!
//! Records are single lines of tab-separated fields; configuration payloads
//! are the deterministic single-line JSON produced by `turbine-config`
//! (string escapes guarantee no raw newlines or tabs), so the format is
//! unambiguous. Two storage backends are provided: an in-memory log for
//! simulations and tests, and a real file-backed log demonstrating durable
//! recovery across process restarts.

use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};

/// Error raised by WAL storage backends.
#[derive(Debug)]
pub enum WalError {
    /// Underlying I/O failure (file backend).
    Io(std::io::Error),
    /// A record failed to parse during recovery.
    Corrupt {
        /// 0-based index of the bad record.
        record: usize,
        /// Description of the problem.
        message: String,
    },
}

impl fmt::Display for WalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WalError::Io(e) => write!(f, "WAL I/O error: {e}"),
            WalError::Corrupt { record, message } => {
                write!(f, "WAL corrupt at record {record}: {message}")
            }
        }
    }
}

impl std::error::Error for WalError {}

impl From<std::io::Error> for WalError {
    fn from(e: std::io::Error) -> Self {
        WalError::Io(e)
    }
}

/// Abstract append-only record log.
pub trait WalStorage {
    /// Append one record (a single line, no newline characters).
    fn append(&mut self, record: &str) -> Result<(), WalError>;

    /// Read every record in append order.
    fn read_all(&self) -> Result<Vec<String>, WalError>;

    /// Atomically replace the whole log (compaction).
    fn replace_all(&mut self, records: &[String]) -> Result<(), WalError>;

    /// Number of records currently stored.
    fn len(&self) -> Result<usize, WalError> {
        Ok(self.read_all()?.len())
    }

    /// True if the log holds no records.
    fn is_empty(&self) -> Result<bool, WalError> {
        Ok(self.len()? == 0)
    }
}

/// In-memory log: the default for simulations, where "durability" means
/// surviving simulated component crashes, not host power loss.
#[derive(Debug, Default, Clone)]
pub struct MemWal {
    records: Vec<String>,
}

impl MemWal {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }
}

impl WalStorage for MemWal {
    fn append(&mut self, record: &str) -> Result<(), WalError> {
        debug_assert!(!record.contains('\n'), "WAL records must be single lines");
        self.records.push(record.to_string());
        Ok(())
    }

    fn read_all(&self) -> Result<Vec<String>, WalError> {
        Ok(self.records.clone())
    }

    fn replace_all(&mut self, records: &[String]) -> Result<(), WalError> {
        self.records = records.to_vec();
        Ok(())
    }

    fn len(&self) -> Result<usize, WalError> {
        Ok(self.records.len())
    }
}

impl turbine_types::Snap for MemWal {
    fn snap(&self, w: &mut turbine_types::SnapWriter) {
        w.put(&self.records);
    }

    fn unsnap(r: &mut turbine_types::SnapReader<'_>) -> Result<Self, turbine_types::SnapError> {
        Ok(MemWal { records: r.get()? })
    }
}

/// File-backed log with line-per-record framing and fsync on append.
#[derive(Debug)]
pub struct FileWal {
    path: PathBuf,
    file: File,
}

impl FileWal {
    /// Open (creating if missing) the log at `path`.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, WalError> {
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .read(true)
            .open(&path)?;
        Ok(FileWal { path, file })
    }

    /// Path of the underlying file.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl WalStorage for FileWal {
    fn append(&mut self, record: &str) -> Result<(), WalError> {
        debug_assert!(!record.contains('\n'), "WAL records must be single lines");
        self.file.write_all(record.as_bytes())?;
        self.file.write_all(b"\n")?;
        self.file.sync_data()?;
        Ok(())
    }

    fn read_all(&self) -> Result<Vec<String>, WalError> {
        let file = File::open(&self.path)?;
        let mut records = Vec::new();
        for line in BufReader::new(file).lines() {
            let line = line?;
            if !line.is_empty() {
                records.push(line);
            }
        }
        Ok(records)
    }

    fn replace_all(&mut self, records: &[String]) -> Result<(), WalError> {
        // Write to a sibling temp file, fsync, then rename over the old
        // log — the standard crash-safe compaction dance.
        let tmp = self.path.with_extension("wal.tmp");
        {
            let mut f = File::create(&tmp)?;
            for r in records {
                f.write_all(r.as_bytes())?;
                f.write_all(b"\n")?;
            }
            f.sync_data()?;
        }
        std::fs::rename(&tmp, &self.path)?;
        self.file = OpenOptions::new()
            .append(true)
            .read(true)
            .open(&self.path)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_wal_appends_and_reads_in_order() {
        let mut wal = MemWal::new();
        wal.append("a\t1").expect("append");
        wal.append("b\t2").expect("append");
        assert_eq!(wal.read_all().expect("read"), vec!["a\t1", "b\t2"]);
        assert_eq!(wal.len().expect("len"), 2);
    }

    #[test]
    fn mem_wal_replace_all_compacts() {
        let mut wal = MemWal::new();
        for i in 0..10 {
            wal.append(&format!("r{i}")).expect("append");
        }
        wal.replace_all(&["snapshot".to_string()]).expect("replace");
        assert_eq!(wal.read_all().expect("read"), vec!["snapshot"]);
    }

    #[test]
    fn file_wal_survives_reopen() {
        let dir = std::env::temp_dir().join(format!("turbine-wal-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("reopen.wal");
        let _ = std::fs::remove_file(&path);
        {
            let mut wal = FileWal::open(&path).expect("open");
            wal.append("first").expect("append");
            wal.append("second").expect("append");
        }
        let wal = FileWal::open(&path).expect("reopen");
        assert_eq!(wal.read_all().expect("read"), vec!["first", "second"]);
        std::fs::remove_file(&path).expect("cleanup");
    }

    #[test]
    fn file_wal_replace_all_is_atomic_rename() {
        let dir = std::env::temp_dir().join(format!("turbine-wal-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("compact.wal");
        let _ = std::fs::remove_file(&path);
        let mut wal = FileWal::open(&path).expect("open");
        for i in 0..5 {
            wal.append(&format!("r{i}")).expect("append");
        }
        wal.replace_all(&["only".to_string()]).expect("replace");
        // Appends continue to work after compaction.
        wal.append("after").expect("append");
        assert_eq!(wal.read_all().expect("read"), vec!["only", "after"]);
        std::fs::remove_file(&path).expect("cleanup");
    }
}
