//! The Job Service: the API layer over the Job Store (paper §III-A).
//!
//! The Job Service guarantees job changes are committed to the Job Store
//! atomically and with read-modify-write consistency. Components never
//! touch store rows directly: the Provision Service writes the Provisioner
//! level, the Auto Scaler the Scaler level, operators the Oncall level —
//! each through [`JobService::update_level`], which re-reads and retries on
//! version conflicts.

use crate::store::{JobStore, JobStoreError};
use crate::wal::WalStorage;
use std::cell::RefCell;
use std::collections::HashMap;
use turbine_config::{ConfigLevel, ConfigValue, JobConfig};
use turbine_types::JobId;

/// Maximum read-modify-write retries before giving up. Conflicts are rare
/// (two writers to the *same* level in the same instant), so a handful of
/// retries is plenty; exceeding it indicates a livelocked writer and is
/// surfaced as the final conflict error.
const MAX_RMW_RETRIES: usize = 8;

/// The Job Service, owning the Job Store.
pub struct JobService<W: WalStorage> {
    store: JobStore<W>,
    /// Typed-decode cache keyed by the store's per-job change token. The
    /// scaler and metrics loops read the typed view of every job every
    /// round; decoding only on change keeps those loops cheap at fleet
    /// scale.
    typed_cache: RefCell<HashMap<JobId, (u64, JobConfig)>>,
    /// Same caching for the running table's typed view.
    running_cache: RefCell<HashMap<JobId, (u64, Option<JobConfig>)>>,
}

impl<W: WalStorage> JobService<W> {
    /// Wrap a store.
    pub fn new(store: JobStore<W>) -> Self {
        JobService {
            store,
            typed_cache: RefCell::new(HashMap::new()),
            running_cache: RefCell::new(HashMap::new()),
        }
    }

    /// Provision a new job: validate the typed config, then create the job
    /// with it as the Base level.
    pub fn provision(&mut self, job: JobId, config: &JobConfig) -> Result<(), ProvisionError> {
        config.validate().map_err(ProvisionError::Invalid)?;
        self.store
            .create_job(job, config.to_value())
            .map_err(ProvisionError::Store)
    }

    /// Atomically update one level with a read-modify-write loop. `mutate`
    /// receives the current level content (empty map if the level is
    /// unset) and edits it in place.
    pub fn update_level(
        &mut self,
        job: JobId,
        level: ConfigLevel,
        mutate: impl Fn(&mut ConfigValue),
    ) -> Result<(), JobStoreError> {
        let mut attempts = 0;
        loop {
            let (current, version) = self.store.read_level(job, level)?;
            let mut config = current.cloned().unwrap_or_else(ConfigValue::empty_map);
            mutate(&mut config);
            match self.store.write_level(job, level, Some(config), version) {
                Ok(_) => return Ok(()),
                Err(JobStoreError::VersionConflict { .. }) if attempts < MAX_RMW_RETRIES => {
                    attempts += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Set a single `.`-separated path on a level (the common shape of
    /// scaler and oncall updates).
    pub fn set_level_field(
        &mut self,
        job: JobId,
        level: ConfigLevel,
        path: &str,
        value: ConfigValue,
    ) -> Result<(), JobStoreError> {
        self.update_level(job, level, move |cfg| cfg.insert_path(path, value.clone()))
    }

    /// Clear an entire level (e.g. removing an oncall override once the
    /// incident is resolved).
    pub fn clear_level(&mut self, job: JobId, level: ConfigLevel) -> Result<(), JobStoreError> {
        let mut attempts = 0;
        loop {
            let (current, version) = self.store.read_level(job, level)?;
            if current.is_none() {
                return Ok(());
            }
            match self.store.write_level(job, level, None, version) {
                Ok(_) => return Ok(()),
                Err(JobStoreError::VersionConflict { .. }) if attempts < MAX_RMW_RETRIES => {
                    attempts += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// The merged expected configuration decoded into the typed schema.
    /// Cached per job until the next level write.
    pub fn expected_typed(&self, job: JobId) -> Result<JobConfig, ExpectedConfigError> {
        let token = self
            .store
            .expected_token(job)
            .map_err(ExpectedConfigError::Store)?;
        if let Some((cached_token, config)) = self.typed_cache.borrow().get(&job) {
            if *cached_token == token {
                return Ok(config.clone());
            }
        }
        let merged = self
            .store
            .expected_merged_ref(job)
            .map_err(ExpectedConfigError::Store)?;
        let config = JobConfig::from_value(merged).map_err(ExpectedConfigError::Invalid)?;
        self.typed_cache
            .borrow_mut()
            .insert(job, (token, config.clone()));
        Ok(config)
    }

    /// The running configuration decoded into the typed schema, if present
    /// and well-formed. Cached per job until the next commit/clear.
    pub fn running_typed(&self, job: JobId) -> Option<JobConfig> {
        let token = self.store.running_token(job);
        if let Some((cached_token, config)) = self.running_cache.borrow().get(&job) {
            if *cached_token == token {
                return config.clone();
            }
        }
        let config = self
            .store
            .running(job)
            .and_then(|v| JobConfig::from_value(v).ok());
        self.running_cache
            .borrow_mut()
            .insert(job, (token, config.clone()));
        config
    }

    /// Borrow the underlying store (State Syncer reads both tables).
    pub fn store(&self) -> &JobStore<W> {
        &self.store
    }

    /// Mutably borrow the underlying store (State Syncer commits running
    /// configurations).
    pub fn store_mut(&mut self) -> &mut JobStore<W> {
        &mut self.store
    }
}

/// Error provisioning a job.
#[derive(Debug)]
pub enum ProvisionError {
    /// The typed config failed validation checks.
    Invalid(turbine_config::ValidationError),
    /// The store rejected the creation.
    Store(JobStoreError),
}

impl std::fmt::Display for ProvisionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProvisionError::Invalid(e) => write!(f, "provision rejected: {e}"),
            ProvisionError::Store(e) => write!(f, "provision failed: {e}"),
        }
    }
}

impl std::error::Error for ProvisionError {}

/// Error reading a job's merged expected configuration.
#[derive(Debug)]
pub enum ExpectedConfigError {
    /// The store could not serve the read.
    Store(JobStoreError),
    /// The merged JSON did not decode into the typed schema (e.g. a layer
    /// wrote a field with the wrong type).
    Invalid(turbine_config::ValidationError),
}

impl std::fmt::Display for ExpectedConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExpectedConfigError::Store(e) => write!(f, "{e}"),
            ExpectedConfigError::Invalid(e) => write!(f, "merged config invalid: {e}"),
        }
    }
}

impl std::error::Error for ExpectedConfigError {}

impl<W: WalStorage + turbine_types::Snap> turbine_types::Snap for JobService<W> {
    fn snap(&self, w: &mut turbine_types::SnapWriter) {
        // The typed-decode caches are pure derivations of store rows keyed
        // by change tokens; they refill lazily after restore.
        w.put(&self.store);
    }

    fn unsnap(r: &mut turbine_types::SnapReader<'_>) -> Result<Self, turbine_types::SnapError> {
        Ok(JobService::new(r.get()?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wal::MemWal;

    const JOB: JobId = JobId(1);

    fn service_with_job() -> JobService<MemWal> {
        let mut svc = JobService::new(JobStore::new(MemWal::new()));
        svc.provision(JOB, &JobConfig::stateless("tailer", 4, 64))
            .expect("provision");
        svc
    }

    #[test]
    fn provision_validates_config() {
        let mut svc = JobService::new(JobStore::new(MemWal::new()));
        let mut bad = JobConfig::stateless("tailer", 4, 64);
        bad.task_count = 0;
        assert!(matches!(
            svc.provision(JOB, &bad),
            Err(ProvisionError::Invalid(_))
        ));
        // Valid config provisions fine.
        svc.provision(JOB, &JobConfig::stateless("tailer", 4, 64))
            .expect("provision");
        // Re-provisioning the same id is a store error.
        assert!(matches!(
            svc.provision(JOB, &JobConfig::stateless("tailer", 4, 64)),
            Err(ProvisionError::Store(JobStoreError::JobExists(_)))
        ));
    }

    #[test]
    fn scaler_update_changes_typed_view() {
        let mut svc = service_with_job();
        svc.set_level_field(JOB, ConfigLevel::Scaler, "task_count", 12u32.into())
            .expect("update");
        assert_eq!(svc.expected_typed(JOB).expect("typed").task_count, 12);
        // Base is untouched.
        let (base, _) = svc
            .store()
            .read_level(JOB, ConfigLevel::Base)
            .expect("read");
        assert_eq!(
            base.expect("base")
                .get_path("task_count")
                .and_then(|v| v.as_int()),
            Some(4)
        );
    }

    #[test]
    fn oncall_override_beats_scaler_and_clears_cleanly() {
        let mut svc = service_with_job();
        svc.set_level_field(JOB, ConfigLevel::Scaler, "task_count", 12u32.into())
            .expect("scaler");
        svc.set_level_field(JOB, ConfigLevel::Oncall, "task_count", 20u32.into())
            .expect("oncall");
        assert_eq!(svc.expected_typed(JOB).expect("typed").task_count, 20);
        svc.clear_level(JOB, ConfigLevel::Oncall).expect("clear");
        assert_eq!(svc.expected_typed(JOB).expect("typed").task_count, 12);
        // Clearing an already-empty level is a no-op.
        svc.clear_level(JOB, ConfigLevel::Oncall)
            .expect("clear again");
    }

    #[test]
    fn update_level_mutator_sees_previous_content() {
        let mut svc = service_with_job();
        svc.update_level(JOB, ConfigLevel::Scaler, |cfg| {
            cfg.insert("task_count", 6u32.into());
        })
        .expect("first");
        svc.update_level(JOB, ConfigLevel::Scaler, |cfg| {
            let prev = cfg
                .get("task_count")
                .and_then(|v| v.as_int())
                .expect("prev");
            cfg.insert("task_count", ConfigValue::Int(prev * 2));
        })
        .expect("second");
        assert_eq!(svc.expected_typed(JOB).expect("typed").task_count, 12);
    }

    #[test]
    fn typed_decode_error_surfaces() {
        let mut svc = service_with_job();
        svc.set_level_field(JOB, ConfigLevel::Oncall, "task_count", "many".into())
            .expect("write");
        assert!(matches!(
            svc.expected_typed(JOB),
            Err(ExpectedConfigError::Invalid(_))
        ));
    }

    #[test]
    fn running_typed_roundtrips() {
        let mut svc = service_with_job();
        assert!(svc.running_typed(JOB).is_none());
        let merged = svc.store().expected_merged(JOB).expect("merge");
        svc.store_mut().commit_running(JOB, merged).expect("commit");
        assert_eq!(svc.running_typed(JOB).expect("typed").task_count, 4);
    }
}
