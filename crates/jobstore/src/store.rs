//! The Job Store tables (paper Table I) with WAL-backed durability.

use crate::wal::{WalError, WalStorage};
use std::collections::BTreeMap;
use std::fmt;
use turbine_config::{layer_all, parse, to_text, ConfigLevel, ConfigValue};
use turbine_types::JobId;

/// Error raised by Job Store operations.
#[derive(Debug)]
pub enum JobStoreError {
    /// No job with this id in the expected table.
    UnknownJob(JobId),
    /// A job with this id already exists.
    JobExists(JobId),
    /// Optimistic concurrency control rejected a stale write: the level was
    /// modified since the writer read it.
    VersionConflict {
        /// Job being written.
        job: JobId,
        /// Level being written.
        level: ConfigLevel,
        /// Version the writer based its update on.
        expected: u64,
        /// Version actually in the store.
        actual: u64,
    },
    /// The write-ahead log failed.
    Wal(WalError),
}

impl fmt::Display for JobStoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JobStoreError::UnknownJob(j) => write!(f, "unknown {j}"),
            JobStoreError::JobExists(j) => write!(f, "{j} already exists"),
            JobStoreError::VersionConflict {
                job,
                level,
                expected,
                actual,
            } => write!(
                f,
                "version conflict on {job} level {level}: write based on v{expected}, store at v{actual}"
            ),
            JobStoreError::Wal(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for JobStoreError {}

impl From<WalError> for JobStoreError {
    fn from(e: WalError) -> Self {
        JobStoreError::Wal(e)
    }
}

/// One job's row in the Expected Job Table: four configuration levels, each
/// independently versioned. The merged view is cached eagerly — reads (the
/// State Syncer compares it every 30 s for every job) vastly outnumber
/// writes.
#[derive(Debug, Clone, Default)]
struct ExpectedRow {
    levels: [Option<ConfigValue>; 4],
    versions: [u64; 4],
    /// `layer_all` of the present levels, maintained on every write.
    merged: ConfigValue,
    /// Monotonic token bumped on every write to any level; callers use it
    /// to invalidate their own derived caches (e.g. typed decodes).
    token: u64,
}

impl ExpectedRow {
    fn recompute_merged(&mut self) {
        let layers: Vec<&ConfigValue> = self.levels.iter().flatten().collect();
        self.merged = layer_all(&layers);
        self.token += 1;
    }
}

/// Report of a torn-write salvage performed during [`JobStore::recover`]:
/// the valid record prefix was kept, the first corrupt record and
/// everything after it were discarded, and the WAL was truncated to match.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalSalvage {
    /// Records kept (the valid prefix).
    pub kept: usize,
    /// Records discarded (the corrupt record and its tail).
    pub discarded: usize,
    /// 0-based index of the first corrupt record.
    pub first_bad: usize,
    /// What was wrong with it.
    pub message: String,
}

/// The Job Store: Expected Job Table + Running Job Table over a WAL.
#[derive(Debug)]
pub struct JobStore<W: WalStorage> {
    expected: BTreeMap<JobId, ExpectedRow>,
    running: BTreeMap<JobId, ConfigValue>,
    /// Change counters for running rows (bumped on commit/clear), letting
    /// callers cache derived views of the running config.
    running_tokens: BTreeMap<JobId, u64>,
    /// Append-only log of jobs whose expected or running row changed, in
    /// commit order. Readers keep a cursor into it and ask
    /// [`JobStore::changed_since`] for the jobs touched since their last
    /// visit instead of rescanning both tables.
    changelog: Vec<JobId>,
    wal: W,
    /// Set when the last recovery had to discard a corrupt tail.
    salvage: Option<WalSalvage>,
}

impl<W: WalStorage> JobStore<W> {
    /// Create an empty store over `wal` (which must be empty; use
    /// [`JobStore::recover`] for a non-empty log).
    pub fn new(wal: W) -> Self {
        debug_assert!(
            wal.is_empty().unwrap_or(true),
            "use recover() for a non-empty WAL"
        );
        JobStore {
            expected: BTreeMap::new(),
            running: BTreeMap::new(),
            running_tokens: BTreeMap::new(),
            changelog: Vec::new(),
            wal,
            salvage: None,
        }
    }

    /// Rebuild the tables by replaying `wal`.
    ///
    /// A torn write (truncated final record) or corrupt record does not
    /// abort recovery: the valid record prefix is replayed, the corrupt
    /// record and everything after it are discarded, the WAL file is
    /// truncated back to the valid prefix, and the damage is reported via
    /// [`JobStore::salvage_report`]. Only I/O failures are errors.
    pub fn recover(wal: W) -> Result<Self, WalError> {
        let records = wal.read_all()?;
        let mut store = JobStore {
            expected: BTreeMap::new(),
            running: BTreeMap::new(),
            running_tokens: BTreeMap::new(),
            changelog: Vec::new(),
            wal,
            salvage: None,
        };
        for (i, record) in records.iter().enumerate() {
            if let Err(message) = store.replay(record) {
                // Records after a corrupt one cannot be trusted to apply in
                // a consistent order; keep the prefix, drop the tail.
                store.wal.replace_all(&records[..i])?;
                store.salvage = Some(WalSalvage {
                    kept: i,
                    discarded: records.len() - i,
                    first_bad: i,
                    message,
                });
                break;
            }
        }
        Ok(store)
    }

    /// The salvage performed by the last [`JobStore::recover`], if any
    /// corrupt tail had to be discarded.
    pub fn salvage_report(&self) -> Option<&WalSalvage> {
        self.salvage.as_ref()
    }

    fn replay(&mut self, record: &str) -> Result<(), String> {
        let fields: Vec<&str> = record.split('\t').collect();
        let op = *fields.first().ok_or("empty record")?;
        let parse_job = |s: &str| -> Result<JobId, String> {
            s.parse::<u64>()
                .map(JobId)
                .map_err(|_| format!("bad job id '{s}'"))
        };
        match op {
            "create" => {
                let [_, job, base] = fields[..] else {
                    return Err("create needs 2 fields".into());
                };
                let job = parse_job(job)?;
                let base = parse(base).map_err(|e| e.to_string())?;
                let mut row = ExpectedRow::default();
                row.levels[0] = Some(base);
                row.versions[0] = 1;
                row.recompute_merged();
                self.expected.insert(job, row);
                self.changelog.push(job);
            }
            "level" => {
                let [_, job, level, version, payload] = fields[..] else {
                    return Err("level needs 4 fields".into());
                };
                let job = parse_job(job)?;
                let level = level_from_str(level)?;
                let version: u64 = version.parse().map_err(|_| "bad version")?;
                let config = if payload == "-" {
                    None
                } else {
                    Some(parse(payload).map_err(|e| e.to_string())?)
                };
                let row = self
                    .expected
                    .get_mut(&job)
                    .ok_or_else(|| format!("level write for unknown {job}"))?;
                row.levels[level.index()] = config;
                row.versions[level.index()] = version;
                row.recompute_merged();
                self.changelog.push(job);
            }
            "running" => {
                let [_, job, payload] = fields[..] else {
                    return Err("running needs 2 fields".into());
                };
                let job = parse_job(job)?;
                self.running
                    .insert(job, parse(payload).map_err(|e| e.to_string())?);
                *self.running_tokens.entry(job).or_insert(0) += 1;
                self.changelog.push(job);
            }
            "clear_running" => {
                let [_, job] = fields[..] else {
                    return Err("clear_running needs 1 field".into());
                };
                let job = parse_job(job)?;
                self.running.remove(&job);
                *self.running_tokens.entry(job).or_insert(0) += 1;
                self.changelog.push(job);
            }
            "delete" => {
                let [_, job] = fields[..] else {
                    return Err("delete needs 1 field".into());
                };
                let job = parse_job(job)?;
                self.expected.remove(&job);
                self.changelog.push(job);
            }
            other => return Err(format!("unknown op '{other}'")),
        }
        Ok(())
    }

    /// Register a new job with its Base configuration.
    pub fn create_job(&mut self, job: JobId, base: ConfigValue) -> Result<(), JobStoreError> {
        if self.expected.contains_key(&job) {
            return Err(JobStoreError::JobExists(job));
        }
        self.wal
            .append(&format!("create\t{}\t{}", job.raw(), to_text(&base)))?;
        let mut row = ExpectedRow::default();
        row.levels[0] = Some(base);
        row.versions[0] = 1;
        row.recompute_merged();
        self.expected.insert(job, row);
        self.changelog.push(job);
        Ok(())
    }

    /// Read one level of a job's expected configuration along with its
    /// version — the read half of read-modify-write.
    pub fn read_level(
        &self,
        job: JobId,
        level: ConfigLevel,
    ) -> Result<(Option<&ConfigValue>, u64), JobStoreError> {
        let row = self
            .expected
            .get(&job)
            .ok_or(JobStoreError::UnknownJob(job))?;
        Ok((
            row.levels[level.index()].as_ref(),
            row.versions[level.index()],
        ))
    }

    /// Write (or clear, with `None`) one level, conditioned on the version
    /// the writer read. Returns the new version on success.
    ///
    /// This is the isolation mechanism of §III-A: two oncalls writing the
    /// Oncall level concurrently cannot silently overwrite each other — the
    /// second write fails with [`JobStoreError::VersionConflict`] and must
    /// re-read and re-apply.
    pub fn write_level(
        &mut self,
        job: JobId,
        level: ConfigLevel,
        config: Option<ConfigValue>,
        based_on_version: u64,
    ) -> Result<u64, JobStoreError> {
        let row = self
            .expected
            .get(&job)
            .ok_or(JobStoreError::UnknownJob(job))?;
        let actual = row.versions[level.index()];
        if actual != based_on_version {
            return Err(JobStoreError::VersionConflict {
                job,
                level,
                expected: based_on_version,
                actual,
            });
        }
        let new_version = actual + 1;
        let payload = config.as_ref().map_or_else(|| "-".to_string(), to_text);
        self.wal.append(&format!(
            "level\t{}\t{}\t{}\t{}",
            job.raw(),
            level,
            new_version,
            payload
        ))?;
        let row = self.expected.get_mut(&job).expect("checked above");
        row.levels[level.index()] = config;
        row.versions[level.index()] = new_version;
        row.recompute_merged();
        self.changelog.push(job);
        Ok(new_version)
    }

    /// The merged expected configuration: all present levels layered in
    /// precedence order (Base < Provisioner < Scaler < Oncall).
    pub fn expected_merged(&self, job: JobId) -> Result<ConfigValue, JobStoreError> {
        self.expected_merged_ref(job).cloned()
    }

    /// Borrowed view of the cached merged configuration — the hot path for
    /// the per-round expected-vs-running comparison.
    pub fn expected_merged_ref(&self, job: JobId) -> Result<&ConfigValue, JobStoreError> {
        let row = self
            .expected
            .get(&job)
            .ok_or(JobStoreError::UnknownJob(job))?;
        Ok(&row.merged)
    }

    /// Monotonic change token for a job's expected configuration; bumps on
    /// every level write. Lets callers cache derived values (e.g. typed
    /// decodes) without re-merging each read.
    pub fn expected_token(&self, job: JobId) -> Result<u64, JobStoreError> {
        let row = self
            .expected
            .get(&job)
            .ok_or(JobStoreError::UnknownJob(job))?;
        Ok(row.token)
    }

    /// Monotonic change token for a job's running configuration; bumps on
    /// every commit/clear. Zero if never written.
    pub fn running_token(&self, job: JobId) -> u64 {
        self.running_tokens.get(&job).copied().unwrap_or(0)
    }

    /// All jobs present in the expected table.
    pub fn expected_jobs(&self) -> Vec<JobId> {
        self.expected.keys().copied().collect()
    }

    /// True if the job exists in the expected table.
    pub fn has_job(&self, job: JobId) -> bool {
        self.expected.contains_key(&job)
    }

    /// The running configuration of a job, if any tasks were ever started
    /// for it.
    pub fn running(&self, job: JobId) -> Option<&ConfigValue> {
        self.running.get(&job)
    }

    /// All jobs present in the running table.
    pub fn running_jobs(&self) -> Vec<JobId> {
        self.running.keys().copied().collect()
    }

    /// Commit a running configuration. Only the State Syncer calls this,
    /// and only after the corresponding execution plan fully succeeded —
    /// this ordering is what makes job updates atomic.
    pub fn commit_running(&mut self, job: JobId, config: ConfigValue) -> Result<(), JobStoreError> {
        self.wal
            .append(&format!("running\t{}\t{}", job.raw(), to_text(&config)))?;
        self.running.insert(job, config);
        *self.running_tokens.entry(job).or_insert(0) += 1;
        self.changelog.push(job);
        Ok(())
    }

    /// Remove a job's running entry (after its tasks were stopped).
    pub fn clear_running(&mut self, job: JobId) -> Result<(), JobStoreError> {
        self.wal.append(&format!("clear_running\t{}", job.raw()))?;
        self.running.remove(&job);
        *self.running_tokens.entry(job).or_insert(0) += 1;
        self.changelog.push(job);
        Ok(())
    }

    /// Delete a job from the expected table. The State Syncer notices the
    /// expected-vs-running difference and winds the tasks down.
    pub fn delete_job(&mut self, job: JobId) -> Result<(), JobStoreError> {
        if !self.expected.contains_key(&job) {
            return Err(JobStoreError::UnknownJob(job));
        }
        self.wal.append(&format!("delete\t{}", job.raw()))?;
        self.expected.remove(&job);
        self.changelog.push(job);
        Ok(())
    }

    /// Rewrite the WAL as a minimal snapshot of current state. Bounds log
    /// growth for long-running stores.
    pub fn compact(&mut self) -> Result<(), JobStoreError> {
        let mut records = Vec::new();
        for (&job, row) in &self.expected {
            let base = row.levels[0].clone().unwrap_or_else(ConfigValue::empty_map);
            records.push(format!("create\t{}\t{}", job.raw(), to_text(&base)));
            for level in ConfigLevel::PRECEDENCE {
                let idx = level.index();
                // `create` replay sets base v1; rewrite any level whose
                // state differs from that baseline.
                let needs_record = if idx == 0 {
                    row.versions[0] != 1
                } else {
                    row.levels[idx].is_some() || row.versions[idx] != 0
                };
                if needs_record {
                    let payload = row.levels[idx]
                        .as_ref()
                        .map_or_else(|| "-".to_string(), to_text);
                    records.push(format!(
                        "level\t{}\t{}\t{}\t{}",
                        job.raw(),
                        level,
                        row.versions[idx],
                        payload
                    ));
                }
            }
        }
        for (&job, config) in &self.running {
            records.push(format!("running\t{}\t{}", job.raw(), to_text(config)));
        }
        self.wal.replace_all(&records)?;
        Ok(())
    }

    /// Current length of the change log — the cursor value a reader should
    /// hold after consuming everything up to now.
    pub fn changelog_len(&self) -> u64 {
        self.changelog.len() as u64
    }

    /// Jobs whose expected or running row changed since `cursor` (a value
    /// previously returned by [`JobStore::changelog_len`]), in commit order.
    /// A job appears once per change, so callers should dedup. A cursor
    /// from the future (e.g. after a store swap) yields the whole log —
    /// callers detect that via [`JobStore::changelog_len`] going backwards
    /// and fall back to a full rescan.
    pub fn changed_since(&self, cursor: u64) -> &[JobId] {
        let start = (cursor as usize).min(self.changelog.len());
        &self.changelog[start..]
    }

    /// Number of records currently in the WAL.
    pub fn wal_len(&self) -> Result<usize, JobStoreError> {
        Ok(self.wal.len()?)
    }

    /// Borrow the underlying WAL storage (e.g. to snapshot an in-memory
    /// log for recovery tests and benches).
    pub fn wal(&self) -> &W {
        &self.wal
    }
}

fn level_from_str(s: &str) -> Result<ConfigLevel, String> {
    match s {
        "base" => Ok(ConfigLevel::Base),
        "provisioner" => Ok(ConfigLevel::Provisioner),
        "scaler" => Ok(ConfigLevel::Scaler),
        "oncall" => Ok(ConfigLevel::Oncall),
        other => Err(format!("unknown config level '{other}'")),
    }
}

impl turbine_types::Snap for ExpectedRow {
    fn snap(&self, w: &mut turbine_types::SnapWriter) {
        for level in &self.levels {
            w.put(level);
        }
        for version in &self.versions {
            w.u64(*version);
        }
        w.put(&self.merged);
        w.u64(self.token);
    }

    fn unsnap(r: &mut turbine_types::SnapReader<'_>) -> Result<Self, turbine_types::SnapError> {
        let mut row = ExpectedRow::default();
        for level in &mut row.levels {
            *level = r.get()?;
        }
        for version in &mut row.versions {
            *version = r.u64("ExpectedRow.version")?;
        }
        row.merged = r.get()?;
        row.token = r.u64("ExpectedRow.token")?;
        Ok(row)
    }
}

impl turbine_types::Snap for WalSalvage {
    fn snap(&self, w: &mut turbine_types::SnapWriter) {
        w.put(&self.kept);
        w.put(&self.discarded);
        w.put(&self.first_bad);
        w.put(&self.message);
    }

    fn unsnap(r: &mut turbine_types::SnapReader<'_>) -> Result<Self, turbine_types::SnapError> {
        Ok(WalSalvage {
            kept: r.get()?,
            discarded: r.get()?,
            first_bad: r.get()?,
            message: r.get()?,
        })
    }
}

impl<W: WalStorage + turbine_types::Snap> turbine_types::Snap for JobStore<W> {
    fn snap(&self, w: &mut turbine_types::SnapWriter) {
        w.put(&self.expected);
        w.put(&self.running);
        w.put(&self.running_tokens);
        w.put(&self.changelog);
        w.put(&self.wal);
        w.put(&self.salvage);
    }

    fn unsnap(r: &mut turbine_types::SnapReader<'_>) -> Result<Self, turbine_types::SnapError> {
        Ok(JobStore {
            expected: r.get()?,
            running: r.get()?,
            running_tokens: r.get()?,
            changelog: r.get()?,
            wal: r.get()?,
            salvage: r.get()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wal::MemWal;
    use turbine_config::JobConfig;

    const JOB: JobId = JobId(1);

    fn store_with_job() -> JobStore<MemWal> {
        let mut store = JobStore::new(MemWal::new());
        store
            .create_job(JOB, JobConfig::stateless("tailer", 4, 64).to_value())
            .expect("create");
        store
    }

    #[test]
    fn create_sets_base_level_at_v1() {
        let store = store_with_job();
        let (cfg, version) = store.read_level(JOB, ConfigLevel::Base).expect("read");
        assert!(cfg.is_some());
        assert_eq!(version, 1);
        let (cfg, version) = store.read_level(JOB, ConfigLevel::Scaler).expect("read");
        assert!(cfg.is_none());
        assert_eq!(version, 0);
    }

    #[test]
    fn duplicate_create_is_rejected() {
        let mut store = store_with_job();
        let err = store
            .create_job(JOB, ConfigValue::empty_map())
            .expect_err("dup");
        assert!(matches!(err, JobStoreError::JobExists(j) if j == JOB));
    }

    #[test]
    fn version_conflict_on_stale_write() {
        let mut store = store_with_job();
        let (_, v) = store.read_level(JOB, ConfigLevel::Oncall).expect("read");
        // Oncall 1 wins the race.
        let mut cfg1 = ConfigValue::empty_map();
        cfg1.insert("task_count", 20u32.into());
        store
            .write_level(JOB, ConfigLevel::Oncall, Some(cfg1), v)
            .expect("first write");
        // Oncall 2 based its decision on the same version: rejected.
        let mut cfg2 = ConfigValue::empty_map();
        cfg2.insert("task_count", 30u32.into());
        let err = store
            .write_level(JOB, ConfigLevel::Oncall, Some(cfg2.clone()), v)
            .expect_err("stale");
        assert!(matches!(
            err,
            JobStoreError::VersionConflict { actual: 1, .. }
        ));
        // After re-reading, the write succeeds.
        let (_, v2) = store.read_level(JOB, ConfigLevel::Oncall).expect("read");
        store
            .write_level(JOB, ConfigLevel::Oncall, Some(cfg2), v2)
            .expect("retry");
    }

    #[test]
    fn merged_view_respects_precedence() {
        let mut store = store_with_job();
        let mut scaler = ConfigValue::empty_map();
        scaler.insert("task_count", 15u32.into());
        store
            .write_level(JOB, ConfigLevel::Scaler, Some(scaler), 0)
            .expect("scaler write");
        let mut oncall = ConfigValue::empty_map();
        oncall.insert("task_count", 30u32.into());
        store
            .write_level(JOB, ConfigLevel::Oncall, Some(oncall), 0)
            .expect("oncall write");
        let merged = store.expected_merged(JOB).expect("merge");
        assert_eq!(
            merged.get_path("task_count").and_then(|v| v.as_int()),
            Some(30)
        );
        // Clearing the oncall override exposes the scaler value again.
        store
            .write_level(JOB, ConfigLevel::Oncall, None, 1)
            .expect("clear oncall");
        let merged = store.expected_merged(JOB).expect("merge");
        assert_eq!(
            merged.get_path("task_count").and_then(|v| v.as_int()),
            Some(15)
        );
    }

    #[test]
    fn running_table_is_independent() {
        let mut store = store_with_job();
        assert!(store.running(JOB).is_none());
        let cfg = store.expected_merged(JOB).expect("merge");
        store.commit_running(JOB, cfg.clone()).expect("commit");
        assert_eq!(store.running(JOB), Some(&cfg));
        store.clear_running(JOB).expect("clear");
        assert!(store.running(JOB).is_none());
    }

    #[test]
    fn delete_removes_expected_but_not_running() {
        let mut store = store_with_job();
        store
            .commit_running(JOB, ConfigValue::empty_map())
            .expect("commit");
        store.delete_job(JOB).expect("delete");
        assert!(!store.has_job(JOB));
        // Running entry survives: the syncer must still wind tasks down.
        assert!(store.running(JOB).is_some());
        assert!(store.delete_job(JOB).is_err());
    }

    #[test]
    fn recovery_rebuilds_exact_state() {
        let mut store = store_with_job();
        let mut scaler = ConfigValue::empty_map();
        scaler.insert("task_count", 8u32.into());
        store
            .write_level(JOB, ConfigLevel::Scaler, Some(scaler), 0)
            .expect("write");
        store
            .commit_running(JOB, store.expected_merged(JOB).expect("merge"))
            .expect("commit");
        let job2 = JobId(2);
        store
            .create_job(job2, JobConfig::stateless("other", 1, 4).to_value())
            .expect("create");
        store.delete_job(job2).expect("delete");

        // Steal the WAL and recover a fresh store from it.
        let wal = store.wal.clone();
        let recovered = JobStore::recover(wal).expect("recover");
        assert_eq!(recovered.expected_jobs(), vec![JOB]);
        assert_eq!(
            recovered.expected_merged(JOB).expect("merge"),
            store.expected_merged(JOB).expect("merge")
        );
        assert_eq!(recovered.running(JOB), store.running(JOB));
        let (_, v) = recovered
            .read_level(JOB, ConfigLevel::Scaler)
            .expect("read");
        assert_eq!(v, 1);
    }

    #[test]
    fn recovery_after_compaction_matches() {
        let mut store = store_with_job();
        for i in 0..10u32 {
            let (_, v) = store.read_level(JOB, ConfigLevel::Scaler).expect("read");
            let mut cfg = ConfigValue::empty_map();
            cfg.insert("task_count", (4 + i).into());
            store
                .write_level(JOB, ConfigLevel::Scaler, Some(cfg), v)
                .expect("write");
        }
        store
            .commit_running(JOB, store.expected_merged(JOB).expect("merge"))
            .expect("commit");
        let before = store.wal_len().expect("len");
        store.compact().expect("compact");
        let after = store.wal_len().expect("len");
        assert!(
            after < before,
            "compaction must shrink the log ({before} -> {after})"
        );

        let recovered = JobStore::recover(store.wal.clone()).expect("recover");
        assert_eq!(
            recovered.expected_merged(JOB).expect("merge"),
            store.expected_merged(JOB).expect("merge")
        );
        // Versions survive compaction, so OCC keeps working across it.
        let (_, v) = recovered
            .read_level(JOB, ConfigLevel::Scaler)
            .expect("read");
        assert_eq!(v, 10);
    }

    #[test]
    fn corrupt_record_is_salvaged_with_record_index() {
        let mut wal = MemWal::new();
        wal.append("create\t1\t{}").expect("append");
        wal.append("garbage record").expect("append");
        let store = JobStore::recover(wal).expect("salvage, not error");
        let salvage = store.salvage_report().expect("salvage reported");
        assert_eq!(salvage.first_bad, 1);
        assert_eq!(salvage.kept, 1);
        assert_eq!(salvage.discarded, 1);
        // The valid prefix was applied and the WAL truncated to it.
        assert!(store.has_job(JobId(1)));
        assert_eq!(store.wal_len().expect("len"), 1);
    }

    #[test]
    fn truncated_final_record_is_salvaged_and_store_serves() {
        let mut store = store_with_job();
        let mut scaler = ConfigValue::empty_map();
        scaler.insert("task_count", 8u32.into());
        store
            .write_level(JOB, ConfigLevel::Scaler, Some(scaler), 0)
            .expect("write");
        store
            .commit_running(JOB, store.expected_merged(JOB).expect("merge"))
            .expect("commit");
        let expected_merged = store.expected_merged(JOB).expect("merge");

        // A crash mid-append leaves a torn final record: the op and job id
        // made it to disk but the payload did not.
        let mut wal = store.wal.clone();
        let intact = wal.len().expect("len");
        wal.append("running\t1\t{\"truncat").expect("append");

        let recovered = JobStore::recover(wal).expect("salvage, not error");
        let salvage = recovered.salvage_report().expect("salvage reported");
        assert_eq!(salvage.first_bad, intact);
        assert_eq!(salvage.kept, intact);
        assert_eq!(salvage.discarded, 1);
        // Everything before the torn record survived...
        assert_eq!(
            recovered.expected_merged(JOB).expect("merge"),
            expected_merged
        );
        assert_eq!(recovered.running(JOB), store.running(JOB));
        // ...the WAL was truncated back to the valid prefix...
        assert_eq!(recovered.wal_len().expect("len"), intact);
        // ...and the store still serves reads and writes.
        let mut recovered = recovered;
        recovered
            .create_job(JobId(2), JobConfig::stateless("new", 1, 4).to_value())
            .expect("store accepts writes after salvage");
    }

    #[test]
    fn corrupt_mid_file_record_drops_the_tail() {
        let mut wal = MemWal::new();
        wal.append("create\t1\t{}").expect("append");
        wal.append("level\t1\tscaler\tnot-a-version\t{}")
            .expect("append");
        // Valid-looking records after the corruption are untrustworthy and
        // must be discarded with it.
        wal.append("create\t2\t{}").expect("append");
        let store = JobStore::recover(wal).expect("salvage, not error");
        let salvage = store.salvage_report().expect("salvage reported");
        assert_eq!(salvage.first_bad, 1);
        assert_eq!(salvage.kept, 1);
        assert_eq!(salvage.discarded, 2);
        assert!(store.has_job(JobId(1)));
        assert!(
            !store.has_job(JobId(2)),
            "tail after corruption must be dropped"
        );
        assert_eq!(store.wal_len().expect("len"), 1);
    }

    #[test]
    fn clean_recovery_reports_no_salvage() {
        let store = store_with_job();
        let recovered = JobStore::recover(store.wal.clone()).expect("recover");
        assert!(recovered.salvage_report().is_none());
    }

    #[test]
    fn changelog_records_every_table_mutation() {
        let mut store = store_with_job();
        let cursor = store.changelog_len();
        assert_eq!(store.changed_since(0), &[JOB], "create is logged");
        assert!(store.changed_since(cursor).is_empty());

        let mut cfg = ConfigValue::empty_map();
        cfg.insert("task_count", 8u32.into());
        store
            .write_level(JOB, ConfigLevel::Scaler, Some(cfg), 0)
            .expect("write");
        store
            .commit_running(JOB, store.expected_merged(JOB).expect("merge"))
            .expect("commit");
        let job2 = JobId(2);
        store
            .create_job(job2, JobConfig::stateless("other", 1, 4).to_value())
            .expect("create");
        store.delete_job(job2).expect("delete");
        store.clear_running(JOB).expect("clear");
        assert_eq!(store.changed_since(cursor), &[JOB, JOB, job2, job2, JOB]);

        // A failed write logs nothing.
        let cursor = store.changelog_len();
        assert!(store
            .write_level(JOB, ConfigLevel::Scaler, None, 99)
            .is_err());
        assert!(store.changed_since(cursor).is_empty());
        // A future cursor yields the whole log rather than panicking.
        assert_eq!(store.changed_since(cursor + 10), &[] as &[JobId]);

        // Recovery replays the same mutations, so the changelog covers
        // every job a reader could be stale on.
        let recovered = JobStore::recover(store.wal.clone()).expect("recover");
        assert_eq!(recovered.changelog_len(), store.changelog_len());
        assert_eq!(recovered.changed_since(0), store.changed_since(0));
    }

    #[test]
    fn unknown_job_errors() {
        let store: JobStore<MemWal> = JobStore::new(MemWal::new());
        assert!(matches!(
            store.read_level(JobId(9), ConfigLevel::Base),
            Err(JobStoreError::UnknownJob(_))
        ));
        assert!(store.expected_merged(JobId(9)).is_err());
    }
}
