//! A minimal, dependency-free benchmark harness.
//!
//! Stand-in for the `criterion` crate so the workspace builds fully
//! offline; wired in via Cargo dependency renaming (`criterion = { package
//! = "criterion-shim", ... }`), so the bench sources stay byte-identical
//! to what they would be against upstream criterion.
//!
//! Scope: `Criterion::bench_function`, `benchmark_group` (with
//! `sample_size`, `bench_function`, `bench_with_input`, `finish`),
//! `BenchmarkId::new`, `Bencher::iter`, and the `criterion_group!` /
//! `criterion_main!` macros. Measurement is a simple calibrated
//! mean-of-samples; results print as `name  time: [median mean max]`.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Target wall-clock spent per sample during measurement.
const SAMPLE_TARGET: Duration = Duration::from_millis(5);

/// The benchmark driver handed to `criterion_group!` targets.
#[derive(Debug)]
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 20,
        }
    }
}

impl Criterion {
    /// Run one benchmark under the given name.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(name, self.default_sample_size, f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
            sample_size: 20,
        }
    }
}

/// A named group of benchmarks sharing settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Run one benchmark within the group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&format!("{}/{}", self.name, name), self.sample_size, f);
        self
    }

    /// Run one parameterized benchmark within the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label);
        run_benchmark(&label, self.sample_size, |b| f(b, input));
        self
    }

    /// Close the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

/// Identifier for one parameterized benchmark case.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id rendered as `name/parameter`.
    pub fn new<P: Display>(name: &str, parameter: P) -> Self {
        BenchmarkId {
            label: format!("{name}/{parameter}"),
        }
    }
}

/// Timer handle passed to the benchmark closure.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Time the routine: calibrate an iteration count, then record
    /// `sample_size` samples of that many iterations each.
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        // Calibration: grow the per-sample iteration count until one sample
        // takes long enough to time reliably.
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= SAMPLE_TARGET || iters >= 1 << 20 {
                break;
            }
            iters = if elapsed.is_zero() {
                iters * 8
            } else {
                let scale = SAMPLE_TARGET.as_nanos() / elapsed.as_nanos().max(1) + 1;
                (iters * scale.min(16) as u64).max(iters + 1)
            };
        }
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            self.samples.push(start.elapsed() / iters as u32);
        }
    }
}

fn run_benchmark<F>(name: &str, sample_size: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher {
        samples: Vec::new(),
        sample_size,
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{name:<48} (no measurement)");
        return;
    }
    let mut sorted = bencher.samples.clone();
    sorted.sort();
    let median = sorted[sorted.len() / 2];
    let mean = sorted.iter().sum::<Duration>() / sorted.len() as u32;
    let max = *sorted.last().expect("non-empty");
    println!(
        "{name:<48} time: [{} {} {}]",
        fmt_duration(median),
        fmt_duration(mean),
        fmt_duration(max)
    );
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", ns as f64 / 1_000_000_000.0)
    }
}

/// Bundle benchmark functions into a group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_measures() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        let mut calls = 0u64;
        group.bench_function("counting", |b| {
            b.iter(|| {
                calls += 1;
                calls
            })
        });
        group.finish();
        assert!(calls > 0);
    }

    #[test]
    fn benchmark_id_renders_name_and_parameter() {
        let id = BenchmarkId::new("cold", 512);
        assert_eq!(id.label, "cold/512");
    }

    #[test]
    fn duration_formatting_picks_sane_units() {
        assert_eq!(fmt_duration(Duration::from_nanos(120)), "120 ns");
        assert_eq!(fmt_duration(Duration::from_micros(1500)), "1.50 ms");
    }
}
