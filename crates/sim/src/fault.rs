//! Deterministic cross-component fault injection — the chaos engine.
//!
//! A [`FaultInjector`] holds the set of currently active faults plus a
//! schedule of [`FaultPlan`] windows, and exposes named fault points that
//! the platform consults at component boundaries (Task Service fetches,
//! State Syncer rounds, heartbeat delivery, Scribe reads). Faults are pure
//! data here: the injector decides *when* a fault is active, the platform
//! decides *what* degraded behaviour that implies. Every activation and
//! clearance is appended to an event log, so a seeded chaos run produces a
//! bit-for-bit reproducible fault timeline.

use std::collections::BTreeMap;
use turbine_types::{ContainerId, SimTime};

/// A failure class the chaos engine can inject.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum Fault {
    /// The Task Service is unreachable: snapshot refreshes fail and Task
    /// Managers keep serving from their cached snapshot (paper §II's
    /// degraded mode — existing jobs are unaffected).
    TaskServiceDown,
    /// The Job Store is unavailable: no config reads or writes, so State
    /// Syncer rounds and scaler config updates are skipped until it
    /// returns.
    JobStoreDown,
    /// Heartbeats from one container to the Shard Manager are dropped
    /// (network partition). After the proactive connection timeout the
    /// container reboots itself; after the fail-over interval the Shard
    /// Manager reassigns its shards (§IV-C).
    HeartbeatLoss(ContainerId),
    /// The State Syncer process crashes. While the fault is active no sync
    /// rounds run; on clearance a fresh syncer restarts with empty
    /// in-memory state and resumes from the persisted expected-vs-running
    /// difference (§III-B's fault-tolerance property).
    SyncerCrash,
    /// Reads from one Scribe category stall: consumers receive nothing
    /// while producers keep appending — the dependency-failure class the
    /// auto root-causer must recognize (§V-D).
    ScribeStall(String),
}

impl Fault {
    /// Stable human-readable label (used in the event log and digests).
    pub fn label(&self) -> String {
        match self {
            Fault::TaskServiceDown => "task_service_down".to_string(),
            Fault::JobStoreDown => "job_store_down".to_string(),
            Fault::HeartbeatLoss(c) => format!("heartbeat_loss({})", c.raw()),
            Fault::SyncerCrash => "syncer_crash".to_string(),
            Fault::ScribeStall(cat) => format!("scribe_stall({cat})"),
        }
    }
}

/// One scheduled fault window.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// The fault to activate.
    pub fault: Fault,
    /// Activation time.
    pub from: SimTime,
    /// Expiry time; `None` keeps the fault active until an explicit
    /// [`FaultInjector::clear`].
    pub until: Option<SimTime>,
}

/// A state change the injector reports so the platform can apply side
/// effects (sever a connection, restart the syncer, ...).
#[derive(Debug, Clone, PartialEq)]
pub enum FaultTransition {
    /// The fault just became active.
    Activated(Fault),
    /// The fault just cleared.
    Cleared(Fault),
}

/// The chaos engine: schedulable, seed-friendly fault windows with a
/// deterministic event log.
#[derive(Debug, Default)]
pub struct FaultInjector {
    /// Pending windows, kept sorted by activation time (ties broken by
    /// label so scheduling order never affects the outcome).
    scheduled: Vec<FaultPlan>,
    /// Active faults with their optional expiry.
    active: BTreeMap<Fault, Option<SimTime>>,
    /// Every activation/clearance, in order.
    log: Vec<(SimTime, String)>,
    /// Time of the most recent transition (either direction).
    last_transition: Option<SimTime>,
}

impl FaultInjector {
    /// An injector with nothing scheduled.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedule a fault window for later activation by [`advance`].
    ///
    /// [`advance`]: FaultInjector::advance
    pub fn schedule(&mut self, plan: FaultPlan) {
        self.scheduled.push(plan);
        self.scheduled.sort_by_key(|p| (p.from, p.fault.label()));
    }

    /// Activate a fault immediately. Returns the transitions (empty if the
    /// fault was already active — the expiry is still updated).
    pub fn inject(
        &mut self,
        now: SimTime,
        fault: Fault,
        until: Option<SimTime>,
    ) -> Vec<FaultTransition> {
        let fresh = !self.active.contains_key(&fault);
        self.active.insert(fault.clone(), until);
        if fresh {
            self.record(now, "inject", &fault);
            vec![FaultTransition::Activated(fault)]
        } else {
            Vec::new()
        }
    }

    /// Clear a fault immediately. Returns the transitions (empty if it was
    /// not active).
    pub fn clear(&mut self, now: SimTime, fault: &Fault) -> Vec<FaultTransition> {
        if self.active.remove(fault).is_some() {
            self.record(now, "clear", fault);
            vec![FaultTransition::Cleared(fault.clone())]
        } else {
            Vec::new()
        }
    }

    /// Advance to `now`: expire elapsed windows, activate due ones. The
    /// returned transitions are in a deterministic order (expirations
    /// first, then activations, each sorted by fault label).
    pub fn advance(&mut self, now: SimTime) -> Vec<FaultTransition> {
        let mut transitions = Vec::new();
        // Expirations first so a window scheduled back-to-back with
        // another's end re-activates cleanly.
        let expired: Vec<Fault> = self
            .active
            .iter()
            .filter(|(_, until)| until.is_some_and(|t| now >= t))
            .map(|(f, _)| f.clone())
            .collect();
        for fault in expired {
            transitions.extend(self.clear(now, &fault));
        }
        while let Some(plan) = self.scheduled.first() {
            if plan.from > now {
                break;
            }
            let plan = self.scheduled.remove(0);
            // A window that fully elapsed before anyone advanced past it
            // still logs both edges, so the event log never silently drops
            // a scheduled fault.
            if plan.until.is_some_and(|t| now >= t) {
                transitions.extend(self.inject(now, plan.fault.clone(), plan.until));
                transitions.extend(self.clear(now, &plan.fault));
            } else {
                transitions.extend(self.inject(now, plan.fault, plan.until));
            }
        }
        transitions
    }

    /// Named fault point: is this fault active right now?
    pub fn is_active(&self, fault: &Fault) -> bool {
        self.active.contains_key(fault)
    }

    /// True if any fault is active.
    pub fn any_active(&self) -> bool {
        !self.active.is_empty()
    }

    /// Iterate the active faults.
    pub fn active(&self) -> impl Iterator<Item = &Fault> {
        self.active.keys()
    }

    /// Number of scheduled windows not yet activated.
    pub fn pending(&self) -> usize {
        self.scheduled.len()
    }

    /// Time of the most recent activation or clearance, if any.
    pub fn last_transition(&self) -> Option<SimTime> {
        self.last_transition
    }

    /// The full fault event log: (time, `inject <label>` / `clear <label>`).
    pub fn log(&self) -> &[(SimTime, String)] {
        &self.log
    }

    /// FNV-1a digest of the event log — two runs produced the identical
    /// fault timeline iff their digests match.
    pub fn log_digest(&self) -> u64 {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                hash ^= b as u64;
                hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
            }
        };
        for (at, entry) in &self.log {
            eat(&at.as_secs_f64().to_bits().to_le_bytes());
            eat(entry.as_bytes());
            eat(b"\n");
        }
        hash
    }

    fn record(&mut self, now: SimTime, verb: &str, fault: &Fault) {
        self.last_transition = Some(now);
        self.log.push((now, format!("{verb} {}", fault.label())));
    }
}

impl turbine_types::Snap for Fault {
    fn snap(&self, w: &mut turbine_types::SnapWriter) {
        match self {
            Fault::TaskServiceDown => w.u8(0),
            Fault::JobStoreDown => w.u8(1),
            Fault::HeartbeatLoss(c) => {
                w.u8(2);
                w.put(c);
            }
            Fault::SyncerCrash => w.u8(3),
            Fault::ScribeStall(cat) => {
                w.u8(4);
                w.put(cat);
            }
        }
    }

    fn unsnap(r: &mut turbine_types::SnapReader<'_>) -> Result<Self, turbine_types::SnapError> {
        match r.u8("Fault.tag")? {
            0 => Ok(Fault::TaskServiceDown),
            1 => Ok(Fault::JobStoreDown),
            2 => Ok(Fault::HeartbeatLoss(r.get()?)),
            3 => Ok(Fault::SyncerCrash),
            4 => Ok(Fault::ScribeStall(r.get()?)),
            tag => Err(turbine_types::SnapError::Tag("Fault", tag as u64)),
        }
    }
}

impl turbine_types::Snap for FaultPlan {
    fn snap(&self, w: &mut turbine_types::SnapWriter) {
        w.put(&self.fault);
        w.put(&self.from);
        w.put(&self.until);
    }

    fn unsnap(r: &mut turbine_types::SnapReader<'_>) -> Result<Self, turbine_types::SnapError> {
        Ok(FaultPlan {
            fault: r.get()?,
            from: r.get()?,
            until: r.get()?,
        })
    }
}

impl turbine_types::Snap for FaultInjector {
    fn snap(&self, w: &mut turbine_types::SnapWriter) {
        w.put(&self.scheduled);
        w.put(&self.active);
        w.put(&self.log);
        w.put(&self.last_transition);
    }

    fn unsnap(r: &mut turbine_types::SnapReader<'_>) -> Result<Self, turbine_types::SnapError> {
        Ok(FaultInjector {
            scheduled: r.get()?,
            active: r.get()?,
            log: r.get()?,
            last_transition: r.get()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use turbine_types::Duration;

    fn t(secs: u64) -> SimTime {
        SimTime::ZERO + Duration::from_secs(secs)
    }

    #[test]
    fn inject_and_clear_toggle_activity() {
        let mut inj = FaultInjector::new();
        assert!(!inj.any_active());
        let tr = inj.inject(t(10), Fault::TaskServiceDown, None);
        assert_eq!(tr, vec![FaultTransition::Activated(Fault::TaskServiceDown)]);
        assert!(inj.is_active(&Fault::TaskServiceDown));
        // Double-inject is a no-op transition-wise.
        assert!(inj.inject(t(11), Fault::TaskServiceDown, None).is_empty());
        let tr = inj.clear(t(20), &Fault::TaskServiceDown);
        assert_eq!(tr, vec![FaultTransition::Cleared(Fault::TaskServiceDown)]);
        assert!(!inj.any_active());
        assert!(inj.clear(t(21), &Fault::TaskServiceDown).is_empty());
        assert_eq!(inj.log().len(), 2);
    }

    #[test]
    fn scheduled_windows_activate_and_expire() {
        let mut inj = FaultInjector::new();
        inj.schedule(FaultPlan {
            fault: Fault::SyncerCrash,
            from: t(100),
            until: Some(t(160)),
        });
        assert!(inj.advance(t(50)).is_empty());
        let tr = inj.advance(t(100));
        assert_eq!(tr, vec![FaultTransition::Activated(Fault::SyncerCrash)]);
        assert!(inj.advance(t(150)).is_empty());
        let tr = inj.advance(t(160));
        assert_eq!(tr, vec![FaultTransition::Cleared(Fault::SyncerCrash)]);
        assert_eq!(inj.pending(), 0);
        assert_eq!(inj.last_transition(), Some(t(160)));
    }

    #[test]
    fn overlapping_schedules_resolve_deterministically() {
        let faults = [
            Fault::JobStoreDown,
            Fault::HeartbeatLoss(ContainerId(3)),
            Fault::ScribeStall("clicks".into()),
        ];
        // Schedule in two different orders: identical logs.
        let mut logs = Vec::new();
        for order in [[0usize, 1, 2], [2, 0, 1]] {
            let mut inj = FaultInjector::new();
            for &i in &order {
                inj.schedule(FaultPlan {
                    fault: faults[i].clone(),
                    from: t(30),
                    until: Some(t(90)),
                });
            }
            inj.advance(t(30));
            inj.advance(t(90));
            logs.push(inj.log_digest());
        }
        assert_eq!(logs[0], logs[1]);
    }

    #[test]
    fn skipped_over_window_still_logs_both_edges() {
        let mut inj = FaultInjector::new();
        inj.schedule(FaultPlan {
            fault: Fault::TaskServiceDown,
            from: t(10),
            until: Some(t(20)),
        });
        // Coarse advance right past the whole window.
        let tr = inj.advance(t(100));
        assert_eq!(
            tr,
            vec![
                FaultTransition::Activated(Fault::TaskServiceDown),
                FaultTransition::Cleared(Fault::TaskServiceDown),
            ]
        );
        assert!(!inj.any_active());
        assert_eq!(inj.log().len(), 2);
    }

    #[test]
    fn digest_distinguishes_different_timelines() {
        let mut a = FaultInjector::new();
        a.inject(t(10), Fault::TaskServiceDown, None);
        let mut b = FaultInjector::new();
        b.inject(t(11), Fault::TaskServiceDown, None);
        assert_ne!(a.log_digest(), b.log_digest());
    }
}
