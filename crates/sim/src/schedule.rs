//! Periodic schedules for control-loop cadences.
//!
//! Each Turbine component runs on its own cadence (State Syncer every 30 s,
//! Task Manager refresh every 60 s, load report every 10 min, rebalance
//! every 30 min). [`Periodic`] tracks one such cadence: given "now", it
//! reports whether the component is due and computes the next firing time.

use turbine_types::{Duration, SimTime};

/// A fixed-interval schedule with an optional phase offset.
///
/// Phase offsets stagger components that share a cadence so that, like in
/// production, they do not all fire on the same instant.
#[derive(Debug, Clone, Copy)]
pub struct Periodic {
    interval: Duration,
    next_due: SimTime,
}

impl Periodic {
    /// A schedule firing every `interval`, first at `phase`.
    pub fn with_phase(interval: Duration, phase: Duration) -> Self {
        assert!(!interval.is_zero(), "periodic interval must be positive");
        Periodic {
            interval,
            next_due: SimTime::ZERO + phase,
        }
    }

    /// A schedule firing every `interval`, first at one full interval.
    pub fn every(interval: Duration) -> Self {
        Periodic::with_phase(interval, interval)
    }

    /// The cadence.
    pub fn interval(&self) -> Duration {
        self.interval
    }

    /// Next time this schedule fires.
    pub fn next_due(&self) -> SimTime {
        self.next_due
    }

    /// If due at `now`, advance to the next slot and return true. Skips
    /// missed slots rather than firing repeatedly to catch up — a control
    /// loop that was stalled should run once, not N times (this mirrors how
    /// the State Syncer reschedules failed rounds rather than replaying
    /// them).
    pub fn fire_if_due(&mut self, now: SimTime) -> bool {
        if now < self.next_due {
            return false;
        }
        // Advance past `now` in whole intervals.
        let behind = now.since(self.next_due).as_millis();
        let intervals = behind / self.interval.as_millis() + 1;
        self.next_due += Duration::from_millis(intervals * self.interval.as_millis());
        true
    }

    /// Reset the schedule to fire next at `now + interval`.
    pub fn reset(&mut self, now: SimTime) {
        self.next_due = now + self.interval;
    }
}

impl turbine_types::Snap for Periodic {
    fn snap(&self, w: &mut turbine_types::SnapWriter) {
        w.put(&self.interval);
        w.put(&self.next_due);
    }

    fn unsnap(r: &mut turbine_types::SnapReader<'_>) -> Result<Self, turbine_types::SnapError> {
        let interval: Duration = r.get()?;
        if interval.is_zero() {
            return Err(turbine_types::SnapError::Value("Periodic.interval zero"));
        }
        Ok(Periodic {
            interval,
            next_due: r.get()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::ZERO + Duration::from_secs(s)
    }

    #[test]
    fn fires_once_per_interval() {
        let mut p = Periodic::every(Duration::from_secs(30));
        assert!(!p.fire_if_due(t(29)));
        assert!(p.fire_if_due(t(30)));
        assert!(!p.fire_if_due(t(31)));
        assert!(p.fire_if_due(t(60)));
    }

    #[test]
    fn missed_slots_collapse_into_one_firing() {
        let mut p = Periodic::every(Duration::from_secs(30));
        // Stall for five intervals: one firing, then the schedule resumes.
        assert!(p.fire_if_due(t(170)));
        assert!(!p.fire_if_due(t(179)));
        assert_eq!(p.next_due(), t(180));
    }

    #[test]
    fn phase_offsets_stagger_start() {
        let mut p = Periodic::with_phase(Duration::from_secs(60), Duration::from_secs(15));
        assert!(p.fire_if_due(t(15)));
        assert_eq!(p.next_due(), t(75));
    }

    #[test]
    fn zero_phase_fires_at_time_zero() {
        let mut p = Periodic::with_phase(Duration::from_secs(10), Duration::ZERO);
        assert!(p.fire_if_due(SimTime::ZERO));
        assert_eq!(p.next_due(), t(10));
    }

    #[test]
    fn reset_pushes_next_firing_out() {
        let mut p = Periodic::every(Duration::from_secs(30));
        p.reset(t(100));
        assert!(!p.fire_if_due(t(120)));
        assert!(p.fire_if_due(t(130)));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_interval_is_rejected() {
        let _ = Periodic::every(Duration::ZERO);
    }
}
