//! Seeded randomness for workload synthesis and tie-breaking.
//!
//! Wraps a small, fast PRNG behind the distributions the workload models
//! need: uniform, Bernoulli, Gaussian (Box–Muller), log-normal (for
//! heavy-tailed task footprints like Fig. 5's), and exponential (for
//! failure inter-arrival times). Every simulation takes an explicit seed so
//! experiments are exactly reproducible.
//!
//! The generator is a self-contained xoshiro256++ (Blackman & Vigna),
//! seeded through SplitMix64 so that small/correlated seeds still yield
//! well-mixed initial state. Keeping the PRNG in-tree (rather than pulling
//! in an external crate) guarantees the byte-for-byte reproducibility the
//! chaos harness asserts is stable across toolchain updates.

/// Core xoshiro256++ state.
#[derive(Debug, Clone)]
struct Xoshiro256 {
    s: [u64; 4],
}

/// SplitMix64 step — used only to expand the seed into initial state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Xoshiro256 {
    fn seeded(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        // All-zero state is the one degenerate fixed point; SplitMix64
        // cannot produce four zeros from any seed, but guard anyway.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        Xoshiro256 { s }
    }

    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform f64 in [0, 1): top 53 bits scaled by 2^-53.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Deterministic random source for one simulation run.
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: Xoshiro256,
    /// Cached second output of the Box–Muller transform.
    gauss_spare: Option<f64>,
}

impl SimRng {
    /// Create from an explicit seed.
    pub fn seeded(seed: u64) -> Self {
        SimRng {
            inner: Xoshiro256::seeded(seed),
            gauss_spare: None,
        }
    }

    /// Derive an independent child generator; used to give each job its own
    /// stream so adding a job does not perturb the others' draws.
    pub fn fork(&mut self, salt: u64) -> SimRng {
        let seed = self.inner.next_u64() ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        SimRng::seeded(seed)
    }

    /// Uniform in `[lo, hi)`. Returns `lo` when the range is empty.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        if hi <= lo {
            return lo;
        }
        lo + (hi - lo) * self.inner.next_f64()
    }

    /// Uniform integer in `[lo, hi)`. Panics if the range is empty.
    pub fn uniform_usize(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty integer range");
        let span = (hi - lo) as u64;
        // Multiply-shift bounded draw (Lemire) with rejection of the biased
        // low zone, so every value in [0, span) is exactly equally likely.
        let zone = span.wrapping_neg() % span;
        loop {
            let x = self.inner.next_u64();
            let m = (x as u128) * (span as u128);
            if (m as u64) >= zone {
                return lo + (m >> 64) as usize;
            }
        }
    }

    /// Bernoulli trial with probability `p` (clamped to [0, 1]).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        self.inner.next_f64() < p
    }

    /// Standard normal deviate via Box–Muller.
    pub fn gaussian(&mut self) -> f64 {
        if let Some(z) = self.gauss_spare.take() {
            return z;
        }
        // Avoid ln(0) by sampling u1 from (0, 1].
        let u1: f64 = 1.0 - self.inner.next_f64();
        let u2: f64 = self.inner.next_f64();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.gauss_spare = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Normal deviate with the given mean and standard deviation.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.gaussian()
    }

    /// Log-normal deviate: `exp(N(mu, sigma))`. Heavy-tailed; used for
    /// per-task traffic volumes, which span orders of magnitude in the
    /// Scuba Tailer fleet (Fig. 5).
    pub fn log_normal(&mut self, mu: f64, sigma: f64) -> f64 {
        (mu + sigma * self.gaussian()).exp()
    }

    /// Exponential deviate with the given mean (inter-arrival times of
    /// failures and spikes).
    pub fn exponential(&mut self, mean: f64) -> f64 {
        let u: f64 = 1.0 - self.inner.next_f64();
        -mean * u.ln()
    }

    /// Raw 64-bit draw (hash salts, shuffles).
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.uniform_usize(0, i + 1);
            items.swap(i, j);
        }
    }
}

impl turbine_types::Snap for SimRng {
    fn snap(&self, w: &mut turbine_types::SnapWriter) {
        for word in &self.inner.s {
            w.u64(*word);
        }
        w.put(&self.gauss_spare);
    }

    fn unsnap(r: &mut turbine_types::SnapReader<'_>) -> Result<Self, turbine_types::SnapError> {
        let mut s = [0u64; 4];
        for word in &mut s {
            *word = r.u64("SimRng.state")?;
        }
        if s == [0, 0, 0, 0] {
            return Err(turbine_types::SnapError::Value("SimRng.state all-zero"));
        }
        let gauss_spare = r.get()?;
        Ok(SimRng {
            inner: Xoshiro256 { s },
            gauss_spare,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seeded(42);
        let mut b = SimRng::seeded(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seeded(1);
        let mut b = SimRng::seeded(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn uniform_stays_in_range() {
        let mut rng = SimRng::seeded(7);
        for _ in 0..1000 {
            let x = rng.uniform(2.0, 3.0);
            assert!((2.0..3.0).contains(&x));
        }
        assert_eq!(rng.uniform(5.0, 5.0), 5.0);
    }

    #[test]
    fn uniform_usize_covers_range_uniformly() {
        let mut rng = SimRng::seeded(23);
        let mut counts = [0u32; 5];
        for _ in 0..10_000 {
            counts[rng.uniform_usize(0, 5)] += 1;
        }
        for &c in &counts {
            assert!((1_600..2_400).contains(&c), "counts {counts:?}");
        }
    }

    #[test]
    fn chance_extremes_are_deterministic() {
        let mut rng = SimRng::seeded(7);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
    }

    #[test]
    fn gaussian_moments_are_plausible() {
        let mut rng = SimRng::seeded(11);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.gaussian()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn log_normal_is_positive_and_heavy_tailed() {
        let mut rng = SimRng::seeded(13);
        let samples: Vec<f64> = (0..10_000).map(|_| rng.log_normal(0.0, 1.0)).collect();
        assert!(samples.iter().all(|&x| x > 0.0));
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let median = {
            let mut s = samples.clone();
            s.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
            s[s.len() / 2]
        };
        // Heavy right tail: mean well above median.
        assert!(mean > median * 1.3, "mean {mean} median {median}");
    }

    #[test]
    fn exponential_mean_is_plausible() {
        let mut rng = SimRng::seeded(17);
        let n = 20_000;
        let mean = (0..n).map(|_| rng.exponential(5.0)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.2, "mean {mean}");
    }

    #[test]
    fn fork_produces_independent_streams() {
        let mut root = SimRng::seeded(3);
        let mut a = root.fork(1);
        let mut b = root.fork(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SimRng::seeded(19);
        let mut items: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut items);
        let mut sorted = items.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(items, (0..100).collect::<Vec<_>>());
    }
}
