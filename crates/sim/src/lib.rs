//! Deterministic discrete-event simulation kernel.
//!
//! Everything in the Turbine paper's evaluation is a control loop observed
//! over time: 30-second sync rounds, 60-second heartbeats, 10-minute load
//! reports, 30-minute rebalances, reacting to diurnal traffic, storms, and
//! failures. This crate provides the clock, event queue, periodic
//! schedules, and seeded randomness that let the whole platform run
//! bit-for-bit reproducibly in simulated time — days of production behaviour
//! in milliseconds of wall-clock.
//!
//! The kernel is generic over the event type: the platform crate defines
//! its `ControlEvent` enum (one variant per control loop, plus fault-edge
//! and restart wake events) and drives `while let Some((t, ev)) =
//! queue.pop() { ... }`, with [`Periodic`] as the cadence arithmetic that
//! decides each component's next due time. No closures are stored, which
//! keeps ownership simple and the replay deterministic.

pub mod fault;
pub mod queue;
pub mod rng;
pub mod schedule;

pub use fault::{Fault, FaultInjector, FaultPlan, FaultTransition};
pub use queue::EventQueue;
pub use rng::SimRng;
pub use schedule::Periodic;
