//! The event queue: a time-ordered priority queue with deterministic
//! tie-breaking.
//!
//! Events scheduled for the same instant are delivered in insertion order
//! (FIFO), which makes simulations reproducible regardless of heap
//! internals. Time never goes backwards: scheduling an event before the
//! last popped time is a programming error and panics in debug builds (it
//! is clamped to "now" in release builds, matching how a real control plane
//! would treat a stale timer).

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use turbine_types::SimTime;

/// A pending event: ordered by time, then insertion sequence.
#[derive(Debug)]
struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// Time-ordered event queue driving a simulation run.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    next_seq: u64,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// Current simulated time: the timestamp of the last popped event.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule `event` at absolute time `at`. Scheduling in the past is a
    /// bug; debug builds panic, release builds clamp to `now`.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        debug_assert!(at >= self.now, "cannot schedule an event in the past");
        let at = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(Entry { at, seq, event }));
    }

    /// Pop the next event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let Reverse(entry) = self.heap.pop()?;
        self.now = entry.at;
        Some((entry.at, entry.event))
    }

    /// Pop the next event only if it is due at or before `deadline`.
    /// The clock does not advance past `deadline` when nothing is due.
    pub fn pop_until(&mut self, deadline: SimTime) -> Option<(SimTime, E)> {
        match self.heap.peek() {
            Some(Reverse(entry)) if entry.at <= deadline => self.pop(),
            _ => None,
        }
    }

    /// Timestamp of the next pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(e)| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<E: turbine_types::Snap> turbine_types::Snap for EventQueue<E> {
    fn snap(&self, w: &mut turbine_types::SnapWriter) {
        w.put(&self.now);
        w.u64(self.next_seq);
        // Heap iteration order is arbitrary; emit entries sorted by the
        // queue's own (time, sequence) ordering so equal queues always
        // serialize to equal bytes.
        let mut entries: Vec<&Entry<E>> = self.heap.iter().map(|Reverse(e)| e).collect();
        entries.sort_by_key(|e| (e.at, e.seq));
        w.u64(entries.len() as u64);
        for entry in entries {
            w.put(&entry.at);
            w.u64(entry.seq);
            w.put(&entry.event);
        }
    }

    fn unsnap(r: &mut turbine_types::SnapReader<'_>) -> Result<Self, turbine_types::SnapError> {
        let now = r.get()?;
        let next_seq = r.u64("EventQueue.next_seq")?;
        let len = r.len_prefix("EventQueue.entries")?;
        let mut heap = BinaryHeap::with_capacity(len);
        for _ in 0..len {
            let at = r.get()?;
            let seq = r.u64("EventQueue.entry.seq")?;
            if seq >= next_seq {
                return Err(turbine_types::SnapError::Value(
                    "EventQueue entry seq beyond next_seq",
                ));
            }
            let event = r.get()?;
            heap.push(Reverse(Entry { at, seq, event }));
        }
        Ok(EventQueue {
            heap,
            next_seq,
            now,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use turbine_types::Duration;

    fn t(s: u64) -> SimTime {
        SimTime::ZERO + Duration::from_secs(s)
    }

    #[test]
    fn events_pop_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(t(30), "c");
        q.schedule(t(10), "a");
        q.schedule(t(20), "b");
        assert_eq!(q.pop(), Some((t(10), "a")));
        assert_eq!(q.pop(), Some((t(20), "b")));
        assert_eq!(q.now(), t(20));
        assert_eq!(q.pop(), Some((t(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        for label in ["first", "second", "third"] {
            q.schedule(t(5), label);
        }
        assert_eq!(q.pop().expect("event").1, "first");
        assert_eq!(q.pop().expect("event").1, "second");
        assert_eq!(q.pop().expect("event").1, "third");
    }

    #[test]
    fn pop_until_respects_deadline() {
        let mut q = EventQueue::new();
        q.schedule(t(10), 1);
        q.schedule(t(50), 2);
        assert_eq!(q.pop_until(t(20)), Some((t(10), 1)));
        assert_eq!(q.pop_until(t(20)), None);
        // Clock did not jump to the future event.
        assert_eq!(q.now(), t(10));
        assert_eq!(q.peek_time(), Some(t(50)));
    }

    #[test]
    #[should_panic(expected = "in the past")]
    fn scheduling_in_the_past_panics_in_debug() {
        let mut q = EventQueue::new();
        q.schedule(t(10), ());
        q.pop();
        q.schedule(t(5), ());
    }

    #[test]
    fn len_and_empty_track_contents() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(t(1), ());
        q.schedule(t(2), ());
        assert_eq!(q.len(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
    }
}
