//! The local Task Manager running inside every Turbine container
//! (paper §IV-A1, §IV-A2).

use crate::snapshot::TaskSnapshot;
use crate::spec::TaskSpec;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::Arc;
use turbine_types::{ContainerId, Resources, ShardId, TaskId};

/// A lifecycle action the Task Manager performed during reconciliation.
/// The simulator consumes these to start/stop the modelled processes.
#[derive(Debug, Clone, PartialEq)]
pub enum TaskEvent {
    /// The task was started with this spec.
    Started(Arc<TaskSpec>),
    /// The task was stopped.
    Stopped(TaskId),
    /// The task was restarted because its spec changed (package release,
    /// resource change, argument change).
    Restarted(Arc<TaskSpec>),
}

impl TaskEvent {
    /// The task the event concerns.
    pub fn task(&self) -> TaskId {
        match self {
            TaskEvent::Started(s) | TaskEvent::Restarted(s) => s.id,
            TaskEvent::Stopped(id) => *id,
        }
    }
}

/// The per-container Task Manager. It keeps a handle to the **full** task
/// snapshot (not just its own tasks) so that shard movement and fail-over
/// keep working when the Task Service or the Job Management layer is
/// unavailable — the degraded-mode property of §IV-D.
#[derive(Debug)]
pub struct LocalTaskManager {
    container: ContainerId,
    shard_count: u64,
    owned_shards: BTreeSet<ShardId>,
    /// Tasks currently running in this container, with the shard each
    /// belongs to and the spec it was started with.
    running: BTreeMap<TaskId, (ShardId, Arc<TaskSpec>)>,
    /// Latest full indexed snapshot (shared with every other manager).
    snapshot: Arc<TaskSnapshot>,
}

impl LocalTaskManager {
    /// A Task Manager for `container` in a tier of `shard_count` shards.
    pub fn new(container: ContainerId, shard_count: u64) -> Self {
        assert!(shard_count > 0, "tier must have at least one shard");
        LocalTaskManager {
            container,
            shard_count,
            owned_shards: BTreeSet::new(),
            running: BTreeMap::new(),
            snapshot: Arc::new(TaskSnapshot::default()),
        }
    }

    /// The container this manager runs in.
    pub fn container(&self) -> ContainerId {
        self.container
    }

    /// Shards currently owned.
    pub fn owned_shards(&self) -> impl Iterator<Item = ShardId> + '_ {
        self.owned_shards.iter().copied()
    }

    /// Tasks currently running, with their specs.
    pub fn running_tasks(&self) -> impl Iterator<Item = (&TaskId, &Arc<TaskSpec>)> {
        self.running.iter().map(|(id, (_, spec))| (id, spec))
    }

    /// Number of running tasks.
    pub fn task_count(&self) -> usize {
        self.running.len()
    }

    /// True if this manager is running `task`.
    pub fn has_task(&self, task: TaskId) -> bool {
        self.running.contains_key(&task)
    }

    /// True if any running task belongs to `job` — the check the State
    /// Syncer's stop barrier performs.
    pub fn runs_job(&self, job: turbine_types::JobId) -> bool {
        self.running
            .range(TaskId::new(job, 0)..=TaskId::new(job, u32::MAX))
            .next()
            .is_some()
    }

    /// Periodic refresh (production: every 60 s): absorb the latest full
    /// snapshot from the Task Service and reconcile the tasks this
    /// container should run. Returns the lifecycle events performed.
    pub fn refresh(&mut self, snapshot: Arc<TaskSnapshot>) -> Vec<TaskEvent> {
        debug_assert_eq!(snapshot.shard_count(), self.shard_count);
        self.snapshot = snapshot;
        self.reconcile()
    }

    /// Reconcile running tasks against the cached snapshot and owned
    /// shards (used by `refresh` and by shard movement). Cost is
    /// proportional to the tasks this container runs, not the tier size.
    fn reconcile(&mut self) -> Vec<TaskEvent> {
        let mut events = Vec::new();
        // Stop tasks we should no longer run (deleted jobs, shrunk
        // parallelism, moved shards).
        let to_stop: Vec<TaskId> = self
            .running
            .iter()
            .filter(|(id, (shard, _))| {
                !self.owned_shards.contains(shard) || self.snapshot.spec(**id).is_none()
            })
            .map(|(&id, _)| id)
            .collect();
        for id in to_stop {
            self.running.remove(&id);
            events.push(TaskEvent::Stopped(id));
        }
        // Start missing tasks of owned shards; restart changed ones.
        for &shard in &self.owned_shards {
            for &id in self.snapshot.tasks_of_shard(shard) {
                let spec = self.snapshot.spec(id).expect("indexed").clone();
                match self.running.get(&id) {
                    None => {
                        self.running.insert(id, (shard, spec.clone()));
                        events.push(TaskEvent::Started(spec));
                    }
                    Some((_, current)) if spec.requires_restart(current) => {
                        self.running.insert(id, (shard, spec.clone()));
                        events.push(TaskEvent::Restarted(spec));
                    }
                    Some(_) => {}
                }
            }
        }
        events
    }

    /// Handle `ADD_SHARD`: take ownership and start the shard's tasks from
    /// the cached snapshot (works even if the Task Service is currently
    /// unavailable — the cached snapshot is the degraded-mode source).
    pub fn add_shard(&mut self, shard: ShardId) -> Vec<TaskEvent> {
        self.owned_shards.insert(shard);
        self.reconcile()
    }

    /// Handle `DROP_SHARD`: stop the shard's tasks and release ownership.
    /// Returns the stop events; the Shard Manager treats their completion
    /// as the `SUCCESS` acknowledgement of the protocol.
    pub fn drop_shard(&mut self, shard: ShardId) -> Vec<TaskEvent> {
        self.owned_shards.remove(&shard);
        self.reconcile()
    }

    /// Restart a crashed task if it is still ours. Returns the restart
    /// event, or `None` if the task is no longer desired.
    pub fn restart_crashed(&mut self, task: TaskId) -> Option<TaskEvent> {
        self.running
            .get(&task)
            .map(|(_, spec)| TaskEvent::Restarted(spec.clone()))
    }

    /// The load-aggregator thread's output: per-owned-shard sums of the
    /// supplied per-task resource usage (reported to the Shard Manager
    /// every ~10 min). Tasks without a usage sample contribute their
    /// reservation, so new tasks are not invisible to balancing.
    pub fn aggregate_shard_loads(
        &self,
        task_usage: &HashMap<TaskId, Resources>,
    ) -> Vec<(ShardId, Resources)> {
        let mut loads: BTreeMap<ShardId, Resources> = self
            .owned_shards
            .iter()
            .map(|&s| (s, Resources::ZERO))
            .collect();
        for (id, (shard, spec)) in &self.running {
            let usage = task_usage.get(id).copied().unwrap_or(spec.reserved);
            if let Some(slot) = loads.get_mut(shard) {
                *slot += usage;
            }
        }
        loads.into_iter().collect()
    }
}

impl turbine_types::Snap for LocalTaskManager {
    fn snap(&self, w: &mut turbine_types::SnapWriter) {
        w.put(&self.container);
        w.u64(self.shard_count);
        w.put(&self.owned_shards);
        w.u64(self.running.len() as u64);
        for (task, (shard, spec)) in &self.running {
            w.put(task);
            w.put(shard);
            w.put(spec.as_ref());
        }
        w.put(self.snapshot.as_ref());
    }

    fn unsnap(r: &mut turbine_types::SnapReader<'_>) -> Result<Self, turbine_types::SnapError> {
        let container = r.get()?;
        let shard_count = r.u64("LocalTaskManager.shard_count")?;
        if shard_count == 0 {
            return Err(turbine_types::SnapError::Value(
                "LocalTaskManager.shard_count zero",
            ));
        }
        let owned_shards = r.get()?;
        let len = r.len_prefix("LocalTaskManager.running")?;
        let mut running = BTreeMap::new();
        for _ in 0..len {
            let task: TaskId = r.get()?;
            let shard: ShardId = r.get()?;
            let spec: TaskSpec = r.get()?;
            running.insert(task, (shard, Arc::new(spec)));
        }
        Ok(LocalTaskManager {
            container,
            shard_count,
            owned_shards,
            running,
            snapshot: Arc::new(r.get()?),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::shard_of_task;
    use crate::service::TaskService;
    use turbine_config::JobConfig;
    use turbine_types::JobId;

    const SHARDS: u64 = 8;

    fn snapshot_for(jobs: &[(u64, u32)]) -> Arc<TaskSnapshot> {
        let mut specs = Vec::new();
        for &(job, tasks) in jobs {
            specs.extend(TaskService::generate_specs(
                JobId(job),
                &JobConfig::stateless("tailer", tasks, 64),
            ));
        }
        let mut cache = HashMap::new();
        Arc::new(TaskSnapshot::build(specs, SHARDS, &mut cache))
    }

    fn all_shards(tm: &mut LocalTaskManager) {
        for s in 0..SHARDS {
            tm.add_shard(ShardId(s));
        }
    }

    #[test]
    fn owning_all_shards_runs_all_tasks() {
        let mut tm = LocalTaskManager::new(ContainerId(0), SHARDS);
        all_shards(&mut tm);
        let events = tm.refresh(snapshot_for(&[(1, 4)]));
        assert_eq!(tm.task_count(), 4);
        assert_eq!(
            events
                .iter()
                .filter(|e| matches!(e, TaskEvent::Started(_)))
                .count(),
            4
        );
    }

    #[test]
    fn only_owned_shards_tasks_run() {
        let snap = snapshot_for(&[(1, 8)]);
        let mut tm = LocalTaskManager::new(ContainerId(0), SHARDS);
        tm.add_shard(ShardId(0));
        tm.refresh(snap.clone());
        for (id, _) in tm.running_tasks() {
            assert_eq!(shard_of_task(*id, SHARDS), ShardId(0));
        }
        // Two managers with complementary shards run complementary tasks.
        let mut tm2 = LocalTaskManager::new(ContainerId(1), SHARDS);
        for s in 1..SHARDS {
            tm2.add_shard(ShardId(s));
        }
        tm2.refresh(snap);
        assert_eq!(tm.task_count() + tm2.task_count(), 8);
    }

    #[test]
    fn add_shard_starts_tasks_from_cached_snapshot() {
        let mut tm = LocalTaskManager::new(ContainerId(0), SHARDS);
        tm.refresh(snapshot_for(&[(1, 8)])); // no shards yet: nothing runs
        assert_eq!(tm.task_count(), 0);
        // Task Service goes down; ADD_SHARD still works from the cache.
        let mut started = 0;
        for s in 0..SHARDS {
            started += tm
                .add_shard(ShardId(s))
                .iter()
                .filter(|e| matches!(e, TaskEvent::Started(_)))
                .count();
        }
        assert_eq!(started, 8);
    }

    #[test]
    fn drop_shard_stops_exactly_its_tasks() {
        let mut tm = LocalTaskManager::new(ContainerId(0), SHARDS);
        all_shards(&mut tm);
        tm.refresh(snapshot_for(&[(1, 8)]));
        let victim = ShardId(3);
        let victims: Vec<TaskId> = tm
            .running_tasks()
            .filter(|(id, _)| shard_of_task(**id, SHARDS) == victim)
            .map(|(id, _)| *id)
            .collect();
        let events = tm.drop_shard(victim);
        let stopped: Vec<TaskId> = events
            .iter()
            .filter_map(|e| match e {
                TaskEvent::Stopped(id) => Some(*id),
                _ => None,
            })
            .collect();
        assert_eq!(stopped.len(), victims.len());
        for v in victims {
            assert!(stopped.contains(&v));
            assert!(!tm.has_task(v));
        }
    }

    #[test]
    fn package_release_restarts_tasks() {
        let mut tm = LocalTaskManager::new(ContainerId(0), SHARDS);
        all_shards(&mut tm);
        tm.refresh(snapshot_for(&[(1, 4)]));
        let mut config = JobConfig::stateless("tailer", 4, 64);
        config.package.version = 2;
        let mut cache = HashMap::new();
        let snap = Arc::new(TaskSnapshot::build(
            TaskService::generate_specs(JobId(1), &config),
            SHARDS,
            &mut cache,
        ));
        let events = tm.refresh(snap);
        assert_eq!(
            events
                .iter()
                .filter(|e| matches!(e, TaskEvent::Restarted(_)))
                .count(),
            4
        );
        assert_eq!(tm.task_count(), 4);
    }

    #[test]
    fn unchanged_snapshot_is_a_noop() {
        let snap = snapshot_for(&[(1, 4)]);
        let mut tm = LocalTaskManager::new(ContainerId(0), SHARDS);
        all_shards(&mut tm);
        tm.refresh(snap.clone());
        let events = tm.refresh(snap);
        assert!(events.is_empty(), "no churn without changes: {events:?}");
    }

    #[test]
    fn deleted_job_tasks_stop_on_refresh() {
        let mut tm = LocalTaskManager::new(ContainerId(0), SHARDS);
        all_shards(&mut tm);
        tm.refresh(snapshot_for(&[(1, 4)]));
        let events = tm.refresh(snapshot_for(&[]));
        assert_eq!(events.len(), 4);
        assert!(events.iter().all(|e| matches!(e, TaskEvent::Stopped(_))));
        assert_eq!(tm.task_count(), 0);
    }

    #[test]
    fn parallelism_change_rewrites_task_set() {
        let mut tm = LocalTaskManager::new(ContainerId(0), SHARDS);
        all_shards(&mut tm);
        tm.refresh(snapshot_for(&[(1, 8)]));
        assert_eq!(tm.task_count(), 8);
        let events = tm.refresh(snapshot_for(&[(1, 2)]));
        // Tasks 2..8 stop; tasks 0..2 restart (their partition slices and
        // args changed with the new count).
        let stopped = events
            .iter()
            .filter(|e| matches!(e, TaskEvent::Stopped(_)))
            .count();
        let restarted = events
            .iter()
            .filter(|e| matches!(e, TaskEvent::Restarted(_)))
            .count();
        assert_eq!(stopped, 6);
        assert_eq!(restarted, 2);
        assert_eq!(tm.task_count(), 2);
    }

    #[test]
    fn restart_crashed_returns_current_spec() {
        let mut tm = LocalTaskManager::new(ContainerId(0), SHARDS);
        all_shards(&mut tm);
        tm.refresh(snapshot_for(&[(1, 2)]));
        let task = *tm.running_tasks().next().expect("task").0;
        match tm.restart_crashed(task) {
            Some(TaskEvent::Restarted(spec)) => assert_eq!(spec.id, task),
            other => panic!("expected restart, got {other:?}"),
        }
        assert!(tm.restart_crashed(TaskId::new(JobId(99), 0)).is_none());
    }

    #[test]
    fn runs_job_scans_only_that_jobs_range() {
        let mut tm = LocalTaskManager::new(ContainerId(0), SHARDS);
        all_shards(&mut tm);
        tm.refresh(snapshot_for(&[(1, 2), (7, 2)]));
        assert!(tm.runs_job(JobId(1)));
        assert!(tm.runs_job(JobId(7)));
        assert!(!tm.runs_job(JobId(3)));
    }

    #[test]
    fn load_aggregation_sums_per_shard_and_falls_back_to_reservation() {
        let snap = snapshot_for(&[(1, 8)]);
        let mut tm = LocalTaskManager::new(ContainerId(0), SHARDS);
        all_shards(&mut tm);
        tm.refresh(snap);
        let mut usage = HashMap::new();
        let sampled_task = *tm.running_tasks().next().expect("task").0;
        usage.insert(sampled_task, Resources::cpu_mem(2.0, 100.0));
        let loads = tm.aggregate_shard_loads(&usage);
        assert_eq!(loads.len(), SHARDS as usize);
        let total_cpu: f64 = loads.iter().map(|(_, r)| r.cpu).sum();
        // 7 tasks fall back to their 1.0-cpu reservation + 1 sampled at 2.0.
        assert!((total_cpu - 9.0).abs() < 1e-9, "total {total_cpu}");
    }
}
