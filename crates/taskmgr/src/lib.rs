//! Turbine Task Management (paper §IV).
//!
//! Two cooperating pieces implement the "where to run" layer:
//!
//! * the **Task Service** expands running job configurations into *task
//!   specs* (applying parallelism and template substitutions) and serves
//!   snapshots of the full spec list, cached for 90 s;
//! * a **local Task Manager** inside every Turbine container periodically
//!   (60 s) fetches the full snapshot, hashes every task to a shard with
//!   MD5, and starts/stops/updates exactly the tasks whose shards it owns.
//!
//! Keeping the *full* task list in every Task Manager is the availability
//! trick of §IV-D: load balancing and fail-over keep working even when the
//! Task Service or the whole Job Management layer is down, because shard
//! movement alone determines which of the known tasks a container must run.

pub mod local;
pub mod mapping;
pub mod md5;
pub mod service;
pub mod snapshot;
pub mod spec;

pub use local::{LocalTaskManager, TaskEvent};
pub use mapping::{shard_of_task, task_partitions};
pub use service::TaskService;
pub use snapshot::TaskSnapshot;
pub use spec::TaskSpec;
