//! Task specs: everything needed to run one task (paper §IV).

use turbine_config::MemoryEnforcement;
use turbine_types::{PartitionId, Resources, TaskId};

/// A fully rendered task specification. "A Task Spec includes all
/// configurations necessary to run a task, such as package version,
/// arguments, and number of threads" (§IV). Task Managers compare specs to
/// decide whether a running task must be restarted (e.g. after a package
/// release).
#[derive(Debug, Clone, PartialEq)]
pub struct TaskSpec {
    /// The task this spec describes.
    pub id: TaskId,
    /// Binary package name.
    pub package_name: String,
    /// Binary package version; a version change propagates as a restart.
    pub package_version: u64,
    /// Fully substituted command-line arguments.
    pub args: Vec<String>,
    /// Worker threads.
    pub threads: u32,
    /// Resources reserved for the task.
    pub reserved: Resources,
    /// Where the task persists checkpoints.
    pub checkpoint_dir: String,
    /// Scribe category the task reads.
    pub input_category: String,
    /// The disjoint subset of input partitions this task owns.
    pub partitions: Vec<PartitionId>,
    /// Whether the task maintains application state.
    pub stateful: bool,
    /// Memory enforcement mode.
    pub memory_enforcement: MemoryEnforcement,
}

impl TaskSpec {
    /// Stable string key of the task — the input to the MD5 task→shard
    /// hash, so it must not depend on anything that changes across spec
    /// regenerations (only job id and task index).
    pub fn hash_key(&self) -> String {
        format!("{}", self.id)
    }

    /// True if replacing `old` with `self` requires restarting the task
    /// (any change in what the process would observe at startup).
    pub fn requires_restart(&self, old: &TaskSpec) -> bool {
        self != old
    }
}

impl turbine_types::Snap for TaskSpec {
    fn snap(&self, w: &mut turbine_types::SnapWriter) {
        w.put(&self.id);
        w.put(&self.package_name);
        w.u64(self.package_version);
        w.put(&self.args);
        w.u32(self.threads);
        w.put(&self.reserved);
        w.put(&self.checkpoint_dir);
        w.put(&self.input_category);
        w.put(&self.partitions);
        w.put(&self.stateful);
        w.put(&self.memory_enforcement);
    }

    fn unsnap(r: &mut turbine_types::SnapReader<'_>) -> Result<Self, turbine_types::SnapError> {
        Ok(TaskSpec {
            id: r.get()?,
            package_name: r.get()?,
            package_version: r.u64("TaskSpec.package_version")?,
            args: r.get()?,
            threads: r.u32("TaskSpec.threads")?,
            reserved: r.get()?,
            checkpoint_dir: r.get()?,
            input_category: r.get()?,
            partitions: r.get()?,
            stateful: r.get()?,
            memory_enforcement: r.get()?,
        })
    }
}
