//! Task→shard and task→partition mappings (paper §IV-A1, §II).

use crate::md5::md5_u64;
use turbine_types::{PartitionId, ShardId, TaskId};

/// The shard a task belongs to: MD5 of the task's stable key, reduced
/// modulo the tier's shard count. Every Task Manager computes this locally
/// from its full task snapshot, which is what makes the two-level
/// scheduling decentralized — the Shard Manager never needs to know about
/// individual tasks.
pub fn shard_of_task(task: TaskId, shard_count: u64) -> ShardId {
    assert!(shard_count > 0, "tier must have at least one shard");
    let key = format!("{task}");
    ShardId(md5_u64(key.as_bytes()) % shard_count)
}

/// The contiguous, disjoint slice of input partitions owned by task
/// `index` of `task_count` over `partition_count` partitions. Every
/// partition is owned by exactly one task, and ownership depends only on
/// `(index, task_count, partition_count)` — so checkpoint redistribution on
/// a parallelism change is a pure function of the old and new counts.
pub fn task_partitions(index: u32, task_count: u32, partition_count: u32) -> Vec<PartitionId> {
    assert!(task_count > 0, "task_count must be positive");
    assert!(index < task_count, "task index out of range");
    assert!(
        partition_count >= task_count,
        "each task needs at least one partition"
    );
    let index = index as u64;
    let task_count = task_count as u64;
    let partition_count = partition_count as u64;
    let start = index * partition_count / task_count;
    let end = (index + 1) * partition_count / task_count;
    (start..end).map(PartitionId).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use turbine_types::JobId;

    #[test]
    fn shard_mapping_is_deterministic_and_in_range() {
        let t = TaskId::new(JobId(7), 3);
        let s1 = shard_of_task(t, 128);
        let s2 = shard_of_task(t, 128);
        assert_eq!(s1, s2);
        assert!(s1.raw() < 128);
    }

    #[test]
    fn shard_mapping_spreads_tasks() {
        let mut used = HashSet::new();
        for job in 0..100u64 {
            for idx in 0..4u32 {
                used.insert(shard_of_task(TaskId::new(JobId(job), idx), 64));
            }
        }
        // 400 tasks over 64 shards: essentially all shards must be hit.
        assert!(used.len() > 55, "only {} shards used", used.len());
    }

    #[test]
    fn partitions_form_an_exact_disjoint_cover() {
        for (task_count, partition_count) in [(1u32, 1u32), (3, 7), (4, 16), (5, 5), (7, 64)] {
            let mut seen = Vec::new();
            for index in 0..task_count {
                let parts = task_partitions(index, task_count, partition_count);
                assert!(!parts.is_empty(), "task {index} of {task_count} got none");
                seen.extend(parts);
            }
            seen.sort_unstable();
            let expected: Vec<PartitionId> = (0..partition_count as u64).map(PartitionId).collect();
            assert_eq!(
                seen, expected,
                "cover broken for {task_count}/{partition_count}"
            );
        }
    }

    #[test]
    fn partition_slices_are_contiguous_and_ordered() {
        let parts = task_partitions(1, 3, 10);
        let raws: Vec<u64> = parts.iter().map(|p| p.raw()).collect();
        for w in raws.windows(2) {
            assert_eq!(w[1], w[0] + 1);
        }
    }

    #[test]
    #[should_panic(expected = "at least one partition")]
    fn too_few_partitions_panics() {
        let _ = task_partitions(0, 5, 3);
    }
}
