//! MD5, implemented from scratch (RFC 1321).
//!
//! The paper specifies that each local Task Manager "computes an MD5 hash
//! for each task; the result defines the shard ID associated with this
//! task" (§IV-A1). We implement the real digest rather than substituting a
//! different hash so that the task→shard distribution — and therefore load
//! spread — has the same uniformity characteristics as production.
//! (Cryptographic strength is irrelevant here; MD5 is used purely as a
//! well-distributed deterministic hash.)

/// Per-round shift amounts.
const S: [u32; 64] = [
    7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, //
    5, 9, 14, 20, 5, 9, 14, 20, 5, 9, 14, 20, 5, 9, 14, 20, //
    4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, //
    6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21,
];

/// Binary integer parts of sines (RFC 1321 T table).
#[allow(clippy::unreadable_literal)] // transcribed verbatim from the RFC
const K: [u32; 64] = [
    0xd76aa478, 0xe8c7b756, 0x242070db, 0xc1bdceee, 0xf57c0faf, 0x4787c62a, 0xa8304613, 0xfd469501,
    0x698098d8, 0x8b44f7af, 0xffff5bb1, 0x895cd7be, 0x6b901122, 0xfd987193, 0xa679438e, 0x49b40821,
    0xf61e2562, 0xc040b340, 0x265e5a51, 0xe9b6c7aa, 0xd62f105d, 0x02441453, 0xd8a1e681, 0xe7d3fbc8,
    0x21e1cde6, 0xc33707d6, 0xf4d50d87, 0x455a14ed, 0xa9e3e905, 0xfcefa3f8, 0x676f02d9, 0x8d2a4c8a,
    0xfffa3942, 0x8771f681, 0x6d9d6122, 0xfde5380c, 0xa4beea44, 0x4bdecfa9, 0xf6bb4b60, 0xbebfbc70,
    0x289b7ec6, 0xeaa127fa, 0xd4ef3085, 0x04881d05, 0xd9d4d039, 0xe6db99e5, 0x1fa27cf8, 0xc4ac5665,
    0xf4292244, 0x432aff97, 0xab9423a7, 0xfc93a039, 0x655b59c3, 0x8f0ccc92, 0xffeff47d, 0x85845dd1,
    0x6fa87e4f, 0xfe2ce6e0, 0xa3014314, 0x4e0811a1, 0xf7537e82, 0xbd3af235, 0x2ad7d2bb, 0xeb86d391,
];

/// Compute the MD5 digest of `data`.
pub fn md5(data: &[u8]) -> [u8; 16] {
    let mut a0: u32 = 0x67452301;
    let mut b0: u32 = 0xefcdab89;
    let mut c0: u32 = 0x98badcfe;
    let mut d0: u32 = 0x10325476;

    // Padded message: data + 0x80 + zeros + 64-bit little-endian bit length.
    let bit_len = (data.len() as u64).wrapping_mul(8);
    let mut msg = data.to_vec();
    msg.push(0x80);
    while msg.len() % 64 != 56 {
        msg.push(0);
    }
    msg.extend_from_slice(&bit_len.to_le_bytes());

    for chunk in msg.chunks_exact(64) {
        let mut m = [0u32; 16];
        for (i, word) in chunk.chunks_exact(4).enumerate() {
            m[i] = u32::from_le_bytes([word[0], word[1], word[2], word[3]]);
        }
        let (mut a, mut b, mut c, mut d) = (a0, b0, c0, d0);
        for i in 0..64 {
            let (f, g) = match i {
                0..=15 => ((b & c) | (!b & d), i),
                16..=31 => ((d & b) | (!d & c), (5 * i + 1) % 16),
                32..=47 => (b ^ c ^ d, (3 * i + 5) % 16),
                _ => (c ^ (b | !d), (7 * i) % 16),
            };
            let tmp = d;
            d = c;
            c = b;
            b = b.wrapping_add(
                a.wrapping_add(f)
                    .wrapping_add(K[i])
                    .wrapping_add(m[g])
                    .rotate_left(S[i]),
            );
            a = tmp;
        }
        a0 = a0.wrapping_add(a);
        b0 = b0.wrapping_add(b);
        c0 = c0.wrapping_add(c);
        d0 = d0.wrapping_add(d);
    }

    let mut out = [0u8; 16];
    out[0..4].copy_from_slice(&a0.to_le_bytes());
    out[4..8].copy_from_slice(&b0.to_le_bytes());
    out[8..12].copy_from_slice(&c0.to_le_bytes());
    out[12..16].copy_from_slice(&d0.to_le_bytes());
    out
}

/// First 8 digest bytes as a little-endian u64 — the value reduced modulo
/// the shard count for task→shard mapping.
pub fn md5_u64(data: &[u8]) -> u64 {
    let digest = md5(data);
    u64::from_le_bytes(digest[0..8].try_into().expect("8 bytes"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(digest: [u8; 16]) -> String {
        digest.iter().map(|b| format!("{b:02x}")).collect()
    }

    /// RFC 1321 appendix A.5 test suite.
    #[test]
    fn rfc1321_test_vectors() {
        assert_eq!(hex(md5(b"")), "d41d8cd98f00b204e9800998ecf8427e");
        assert_eq!(hex(md5(b"a")), "0cc175b9c0f1b6a831c399e269772661");
        assert_eq!(hex(md5(b"abc")), "900150983cd24fb0d6963f7d28e17f72");
        assert_eq!(
            hex(md5(b"message digest")),
            "f96b697d7cb7938d525a2f31aaf161d0"
        );
        assert_eq!(
            hex(md5(b"abcdefghijklmnopqrstuvwxyz")),
            "c3fcd3d76192e4007dfb496cca67e13b"
        );
        assert_eq!(
            hex(md5(
                b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789"
            )),
            "d174ab98d277d9f5a5611c2c9f419d9f"
        );
        assert_eq!(
            hex(md5(
                b"12345678901234567890123456789012345678901234567890123456789012345678901234567890"
            )),
            "57edf4a22be3c955ac49da2e2107b67a"
        );
    }

    #[test]
    fn padding_boundaries_are_correct() {
        // Lengths straddling the 56-byte padding boundary exercise the
        // two-block path.
        let input55 = vec![b'x'; 55];
        let input56 = vec![b'x'; 56];
        let input64 = vec![b'x'; 64];
        assert_ne!(md5(&input55), md5(&input56));
        assert_ne!(md5(&input56), md5(&input64));
        // Cross-check one with a known value (GNU md5sum):
        assert_eq!(hex(md5(&[b'x'; 64])), "c1bb4f81d892b2d57947682aeb252456");
    }

    #[test]
    fn u64_reduction_is_uniform_enough() {
        // Hash 10k task names into 64 buckets; no bucket should deviate
        // wildly from the mean (binomial tail bound, generous margin).
        let mut buckets = [0u32; 64];
        for i in 0..10_000 {
            let key = format!("job-{}/task-{}", i % 500, i / 500);
            buckets[(md5_u64(key.as_bytes()) % 64) as usize] += 1;
        }
        let mean = 10_000.0 / 64.0;
        for (i, &count) in buckets.iter().enumerate() {
            assert!(
                (count as f64) > mean * 0.5 && (count as f64) < mean * 1.5,
                "bucket {i} has {count} (mean {mean})"
            );
        }
    }
}
