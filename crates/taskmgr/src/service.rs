//! The Task Service (paper §IV): expands running job configurations into
//! task specs and serves cached, indexed snapshots of the full list.

use crate::snapshot::TaskSnapshot;
use crate::spec::TaskSpec;
use std::collections::HashMap;
use std::sync::Arc;
use turbine_config::JobConfig;
use turbine_types::{Duration, JobId, ShardId, SimTime, TaskId};

/// The Task Service. Holds no job state of its own — it reads the Job
/// Store's *running* table (supplied by the caller, keeping the dependency
/// direction clean) and caches the generated snapshot for its TTL
/// (production: 90 s). The cache TTL is one term of the paper's end-to-end
/// scheduling latency: cache expiry (≤90 s) + State Syncer round (≤30 s) +
/// Task Manager refresh (≤60 s) ⇒ 1–2 minutes on average for a cluster-wide
/// update.
#[derive(Debug)]
pub struct TaskService {
    ttl: Duration,
    shard_count: u64,
    cached: Arc<TaskSnapshot>,
    cached_at: Option<SimTime>,
    /// Permanent MD5 task→shard memo (task identity never changes).
    shard_cache: HashMap<TaskId, ShardId>,
}

impl TaskService {
    /// A service with the production cache TTL of 90 seconds.
    pub fn new(shard_count: u64) -> Self {
        Self::with_ttl(Duration::from_secs(90), shard_count)
    }

    /// A service with an explicit cache TTL.
    pub fn with_ttl(ttl: Duration, shard_count: u64) -> Self {
        TaskService {
            ttl,
            shard_count,
            cached: Arc::new(TaskSnapshot::default()),
            cached_at: None,
            shard_cache: HashMap::new(),
        }
    }

    /// The full indexed snapshot at `now`. `fetch_running_jobs` is invoked
    /// only when the cache has expired; it should return the running (not
    /// expected!) configuration of every job — tasks always run what the
    /// State Syncer committed.
    pub fn snapshot(
        &mut self,
        now: SimTime,
        fetch_running_jobs: impl FnOnce() -> Vec<(JobId, JobConfig)>,
    ) -> Arc<TaskSnapshot> {
        let stale = match self.cached_at {
            None => true,
            Some(at) => now.since(at) >= self.ttl,
        };
        if stale {
            let mut specs = Vec::new();
            for (job, config) in fetch_running_jobs() {
                specs.extend(Self::generate_specs(job, &config));
            }
            self.cached = Arc::new(TaskSnapshot::build(
                specs,
                self.shard_count,
                &mut self.shard_cache,
            ));
            self.cached_at = Some(now);
        }
        self.cached.clone()
    }

    /// Drop the cache so the next snapshot refetches (used after State
    /// Syncer commits and by the degraded-mode recovery path).
    pub fn invalidate(&mut self) {
        self.cached_at = None;
    }

    /// Expand one job into its task specs: one spec per task index, with
    /// the partition slice and argument template substituted.
    pub fn generate_specs(job: JobId, config: &JobConfig) -> Vec<TaskSpec> {
        (0..config.task_count)
            .map(|index| {
                let args = config
                    .args
                    .iter()
                    .map(|template| {
                        template
                            .replace("{index}", &index.to_string())
                            .replace("{count}", &config.task_count.to_string())
                            .replace("{category}", &config.input_category)
                            .replace("{checkpoint_dir}", &config.checkpoint_dir)
                    })
                    .collect();
                TaskSpec {
                    id: TaskId::new(job, index),
                    package_name: config.package.name.clone(),
                    package_version: config.package.version,
                    args,
                    threads: config.threads_per_task,
                    reserved: config.task_resources,
                    checkpoint_dir: config.checkpoint_dir.clone(),
                    input_category: config.input_category.clone(),
                    partitions: crate::mapping::task_partitions(
                        index,
                        config.task_count,
                        config.input_partitions,
                    ),
                    stateful: config.stateful,
                    memory_enforcement: config.memory_enforcement,
                }
            })
            .collect()
    }
}

impl turbine_types::Snap for TaskService {
    fn snap(&self, w: &mut turbine_types::SnapWriter) {
        w.put(&self.ttl);
        w.u64(self.shard_count);
        w.put(self.cached.as_ref());
        w.put(&self.cached_at);
        // shard_cache is a pure memo of the MD5 task→shard map; it refills
        // on demand after restore.
    }

    fn unsnap(r: &mut turbine_types::SnapReader<'_>) -> Result<Self, turbine_types::SnapError> {
        Ok(TaskService {
            ttl: r.get()?,
            shard_count: r.u64("TaskService.shard_count")?,
            cached: Arc::new(r.get()?),
            cached_at: r.get()?,
            shard_cache: HashMap::new(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::ZERO + Duration::from_secs(s)
    }

    #[test]
    fn specs_cover_every_task_with_substituted_args() {
        let config = JobConfig::stateless("tailer", 4, 16);
        let specs = TaskService::generate_specs(JobId(1), &config);
        assert_eq!(specs.len(), 4);
        assert_eq!(specs[2].args[0], "--task-index=2");
        assert_eq!(specs[2].args[1], "--task-count=4");
        assert_eq!(specs[2].args[2], "--category=tailer_input");
        assert_eq!(specs[2].partitions.len(), 4);
        // Disjoint cover across specs.
        let all: Vec<_> = specs.iter().flat_map(|s| s.partitions.clone()).collect();
        assert_eq!(all.len(), 16);
    }

    #[test]
    fn snapshot_caches_until_ttl() {
        let mut svc = TaskService::with_ttl(Duration::from_secs(90), 16);
        let config = JobConfig::stateless("tailer", 2, 8);
        let mut fetches = 0;

        for (now, expect_fetch) in [
            (0u64, true),
            (30, false),
            (89, false),
            (90, true),
            (150, false),
        ] {
            let before = fetches;
            let snap = svc.snapshot(t(now), || {
                fetches += 1;
                vec![(JobId(1), config.clone())]
            });
            assert_eq!(snap.len(), 2);
            assert_eq!(
                fetches > before,
                expect_fetch,
                "unexpected fetch behaviour at t={now}"
            );
        }
    }

    #[test]
    fn invalidate_forces_refetch() {
        let mut svc = TaskService::new(16);
        let config = JobConfig::stateless("tailer", 1, 2);
        svc.snapshot(t(0), || vec![(JobId(1), config.clone())]);
        svc.invalidate();
        let mut refetched = false;
        svc.snapshot(t(1), || {
            refetched = true;
            vec![]
        });
        assert!(refetched);
    }

    #[test]
    fn version_bump_changes_specs() {
        let mut config = JobConfig::stateless("tailer", 1, 2);
        let v1 = TaskService::generate_specs(JobId(1), &config);
        config.package.version = 2;
        let v2 = TaskService::generate_specs(JobId(1), &config);
        assert!(v2[0].requires_restart(&v1[0]));
    }
}
