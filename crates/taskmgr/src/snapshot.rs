//! The indexed task-spec snapshot shared by all Task Managers.
//!
//! Every Task Manager keeps the *full* task list (the degraded-mode
//! guarantee of §IV-D). At fleet scale, materializing that list per
//! container would be quadratic, so the Task Service builds one immutable
//! indexed snapshot — task→spec plus shard→tasks, with the MD5 task→shard
//! mapping precomputed — and every Task Manager holds a reference-counted
//! handle to it. Each manager still *has* the full list (its handle keeps
//! the snapshot alive even if the Task Service dies); it just shares the
//! bytes.

use crate::mapping::shard_of_task;
use crate::spec::TaskSpec;
use std::collections::HashMap;
use std::sync::Arc;
use turbine_types::{ShardId, TaskId};

/// An immutable, indexed snapshot of every task spec in the tier.
#[derive(Debug, Default)]
pub struct TaskSnapshot {
    /// Number of shards the tier hashes tasks onto.
    shard_count: u64,
    by_task: HashMap<TaskId, Arc<TaskSpec>>,
    by_shard: HashMap<ShardId, Vec<TaskId>>,
}

impl TaskSnapshot {
    /// Build a snapshot from rendered specs. `shard_cache` memoizes the
    /// MD5 task→shard mapping across snapshot rebuilds (task identity
    /// never changes, so entries are permanent).
    pub fn build(
        specs: Vec<TaskSpec>,
        shard_count: u64,
        shard_cache: &mut HashMap<TaskId, ShardId>,
    ) -> TaskSnapshot {
        assert!(shard_count > 0, "tier must have at least one shard");
        let mut by_task = HashMap::with_capacity(specs.len());
        let mut by_shard: HashMap<ShardId, Vec<TaskId>> = HashMap::new();
        for spec in specs {
            let id = spec.id;
            let shard = *shard_cache
                .entry(id)
                .or_insert_with(|| shard_of_task(id, shard_count));
            by_shard.entry(shard).or_default().push(id);
            by_task.insert(id, Arc::new(spec));
        }
        for tasks in by_shard.values_mut() {
            tasks.sort_unstable();
        }
        TaskSnapshot {
            shard_count,
            by_task,
            by_shard,
        }
    }

    /// The tier's shard count this snapshot was hashed against.
    pub fn shard_count(&self) -> u64 {
        self.shard_count
    }

    /// Spec of one task.
    pub fn spec(&self, task: TaskId) -> Option<&Arc<TaskSpec>> {
        self.by_task.get(&task)
    }

    /// Tasks hashed onto one shard, sorted.
    pub fn tasks_of_shard(&self, shard: ShardId) -> &[TaskId] {
        self.by_shard.get(&shard).map_or(&[], Vec::as_slice)
    }

    /// Total number of tasks in the snapshot.
    pub fn len(&self) -> usize {
        self.by_task.len()
    }

    /// True if the snapshot holds no tasks.
    pub fn is_empty(&self) -> bool {
        self.by_task.is_empty()
    }

    /// Iterate all task ids.
    pub fn task_ids(&self) -> impl Iterator<Item = &TaskId> {
        self.by_task.keys()
    }
}

impl turbine_types::Snap for TaskSnapshot {
    fn snap(&self, w: &mut turbine_types::SnapWriter) {
        w.u64(self.shard_count);
        // Specs sorted by task id; the shard index is rebuilt from the MD5
        // mapping on decode, which is pure in (task, shard_count).
        let mut specs: Vec<&Arc<TaskSpec>> = self.by_task.values().collect();
        specs.sort_unstable_by_key(|s| s.id);
        w.u64(specs.len() as u64);
        for spec in specs {
            w.put(spec.as_ref());
        }
    }

    fn unsnap(r: &mut turbine_types::SnapReader<'_>) -> Result<Self, turbine_types::SnapError> {
        let shard_count = r.u64("TaskSnapshot.shard_count")?;
        let len = r.len_prefix("TaskSnapshot.specs")?;
        if shard_count == 0 {
            // Only the never-built placeholder snapshot has no shards.
            if len != 0 {
                return Err(turbine_types::SnapError::Value(
                    "TaskSnapshot with tasks but zero shards",
                ));
            }
            return Ok(TaskSnapshot::default());
        }
        let mut specs = Vec::with_capacity(len);
        for _ in 0..len {
            specs.push(r.get::<TaskSpec>()?);
        }
        let mut scratch = HashMap::new();
        Ok(TaskSnapshot::build(specs, shard_count, &mut scratch))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::TaskService;
    use turbine_config::JobConfig;
    use turbine_types::JobId;

    #[test]
    fn build_indexes_every_task_exactly_once() {
        let specs = TaskService::generate_specs(JobId(1), &JobConfig::stateless("t", 8, 64));
        let mut cache = HashMap::new();
        let snap = TaskSnapshot::build(specs, 16, &mut cache);
        assert_eq!(snap.len(), 8);
        let total: usize = (0..16).map(|s| snap.tasks_of_shard(ShardId(s)).len()).sum();
        assert_eq!(total, 8, "shard index partitions the tasks");
        assert_eq!(cache.len(), 8);
    }

    #[test]
    fn shard_cache_is_reused_across_rebuilds() {
        let specs = TaskService::generate_specs(JobId(1), &JobConfig::stateless("t", 4, 64));
        let mut cache = HashMap::new();
        let snap1 = TaskSnapshot::build(specs.clone(), 16, &mut cache);
        let snap2 = TaskSnapshot::build(specs, 16, &mut cache);
        for id in snap1.task_ids() {
            let s1 = (0..16)
                .map(ShardId)
                .find(|&s| snap1.tasks_of_shard(s).contains(id))
                .expect("assigned");
            assert!(snap2.tasks_of_shard(s1).contains(id), "stable mapping");
        }
    }

    #[test]
    fn empty_snapshot_is_well_behaved() {
        let mut cache = HashMap::new();
        let snap = TaskSnapshot::build(Vec::new(), 4, &mut cache);
        assert!(snap.is_empty());
        assert!(snap.tasks_of_shard(ShardId(0)).is_empty());
        assert!(snap.spec(TaskId::new(JobId(1), 0)).is_none());
    }
}
