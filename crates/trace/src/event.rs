//! The trace record taxonomy: components, event data, and the stable
//! serializations (digest bytes, JSON) every record carries.

use std::fmt;
use turbine_types::{ContainerId, JobId, ShardId, SimTime, TaskId};

/// Stable identifier of one trace record. Ids are a monotone sequence per
/// buffer; an id stays valid as a cause link even after the ring buffer
/// evicts the record it names (the chain then reports the hop as evicted
/// rather than resolving it).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TraceId(pub u64);

impl fmt::Display for TraceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// The control-plane component (or substrate) a trace record originates
/// from. The first nine variants mirror the scheduler's component table;
/// the last two cover the data-plane tick and the chaos engine, which emit
/// outside any component round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Component {
    /// Heartbeat delivery + proactive reboots + fail-over check.
    Heartbeat,
    /// Task Manager snapshot refresh.
    TmRefresh,
    /// State Syncer reconciliation round.
    StateSyncer,
    /// Auto Scaler evaluation round.
    AutoScaler,
    /// Task Manager load reports.
    LoadReport,
    /// Cluster-wide shard rebalance.
    Rebalance,
    /// Capacity Manager evaluation round.
    CapacityManager,
    /// Scribe/checkpoint durability sync.
    Checkpoint,
    /// Metric sampling round.
    Metrics,
    /// The data-plane tick (OOM kills, crash injection).
    DataPlane,
    /// The chaos engine (fault-window edges).
    ChaosEngine,
}

/// All components, in scheduler-table order first. Index of a component in
/// this slice is its latency-histogram slot.
pub const COMPONENTS: [Component; 11] = [
    Component::Heartbeat,
    Component::TmRefresh,
    Component::StateSyncer,
    Component::AutoScaler,
    Component::LoadReport,
    Component::Rebalance,
    Component::CapacityManager,
    Component::Checkpoint,
    Component::Metrics,
    Component::DataPlane,
    Component::ChaosEngine,
];

impl Component {
    /// Stable snake_case name (CLI filters, JSON, digests).
    pub fn name(self) -> &'static str {
        match self {
            Component::Heartbeat => "heartbeat",
            Component::TmRefresh => "tm_refresh",
            Component::StateSyncer => "state_syncer",
            Component::AutoScaler => "auto_scaler",
            Component::LoadReport => "load_report",
            Component::Rebalance => "rebalance",
            Component::CapacityManager => "capacity_manager",
            Component::Checkpoint => "checkpoint",
            Component::Metrics => "metrics",
            Component::DataPlane => "data_plane",
            Component::ChaosEngine => "chaos_engine",
        }
    }

    /// Slot of this component in [`COMPONENTS`] (latency-histogram index).
    pub fn index(self) -> usize {
        COMPONENTS.iter().position(|&c| c == self).expect("listed")
    }

    /// Parse a [`Component::name`] back (CLI `--component` filters).
    pub fn parse(name: &str) -> Option<Component> {
        COMPONENTS.iter().copied().find(|c| c.name() == name)
    }
}

impl fmt::Display for Component {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The typed payload of one trace record.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceData {
    /// A control-component dispatch span. Only committed to the buffer
    /// once something consequential happens inside the round; empty
    /// rounds leave no record.
    RoundStart {
        /// The dispatched component.
        component: Component,
    },
    /// A chaos-engine fault window edge (activation or clearance). The
    /// clearance's cause link points at the matching activation.
    FaultEdge {
        /// The fault's stable label (e.g. `scribe_stall(clicks)`).
        fault: String,
        /// `true` on activation, `false` on clearance.
        activated: bool,
    },
    /// A symptom the Auto Scaler observed on a job, recorded as the
    /// intermediate hop between a root cause (e.g. a fault edge) and the
    /// decision taken in response.
    Symptom {
        /// The symptomatic job.
        job: JobId,
        /// Short description, e.g. `lagging 400s (SLO 90s)`.
        description: String,
    },
    /// A scaling decision written to the Job Store's scaler level.
    ScalingAction {
        /// The scaled job.
        job: JobId,
        /// Action summary, e.g. `horizontal(tasks=8)`.
        action: String,
    },
    /// The Shard Manager failed over dead containers' shards.
    Failover {
        /// Number of shard movements in the fail-over batch.
        moves: usize,
    },
    /// A periodic load-balancing rebalance moved shards.
    RebalancePlan {
        /// Number of shard movements in the plan.
        moves: usize,
    },
    /// A targeted shard move (root-causer mitigation).
    ShardMove {
        /// The moved shard.
        shard: ShardId,
        /// Destination container.
        to: ContainerId,
    },
    /// A State Syncer round changed a job's lifecycle state.
    SyncOutcome {
        /// The synchronized job.
        job: JobId,
        /// `started`, `simple`, `complex_completed`, or `deleted`.
        outcome: &'static str,
    },
    /// The State Syncer quarantined a job after repeated failures.
    Quarantine {
        /// The quarantined job.
        job: JobId,
    },
    /// A task was OOM-killed and scheduled for restart.
    OomRestart {
        /// The killed task.
        task: TaskId,
        /// The container it ran in.
        container: ContainerId,
    },
    /// A recovered checkpoint sat beyond the Scribe tail (e.g. the WAL
    /// lost a torn tail the checkpoint had already covered) and was
    /// clamped back so readers can resume instead of erroring forever.
    CheckpointClamp {
        /// The job whose checkpoint was clamped.
        job: JobId,
        /// The affected partition.
        partition: u64,
        /// The recovered (beyond-tail) offset.
        from: u64,
        /// The tail offset it was clamped to.
        to: u64,
    },
    /// A heartbeat arrived from a container the Shard Manager had already
    /// declared dead and failed over — the container came back and was
    /// silently revived into the fleet.
    ContainerRevived {
        /// The revived container.
        container: ContainerId,
        /// Shards still mapped to the container at revival time. Must be
        /// zero: fail-over reassigned them before the revival, and the
        /// invariant checker flags any leftovers.
        stale_shards: usize,
    },
    /// The Shard Manager placed a warm standby for a critical job.
    StandbyPlaced {
        /// The protected job.
        job: JobId,
        /// The container hosting the standby.
        container: ContainerId,
    },
    /// A warm standby was promoted to primary on the fast fail-over path.
    StandbyPromoted {
        /// The recovered job.
        job: JobId,
        /// The standby container that took ownership.
        to: ContainerId,
        /// Number of shard movements in the promotion batch.
        moves: usize,
    },
    /// A job recovered from a fault-attributed outage; the record carries
    /// the per-tier SLO accounting sample.
    SloRecovery {
        /// The recovered job.
        job: JobId,
        /// The job's resiliency tier (`best_effort`/`standard`/`critical`).
        tier: &'static str,
        /// Outage duration in milliseconds (fault onset to recovery).
        ms: u64,
        /// True when the recovery went through the warm-standby fast path.
        fast: bool,
    },
    /// The ODS alerting engine opened an incident. The cause link (when
    /// the alert condition is fault-attributable) points at the fault
    /// edge that ultimately produced the breach, so `--explain` walks
    /// from the page back to the root cause.
    Incident {
        /// The firing rule's name.
        rule: String,
        /// Severity name (`info`/`warning`/`critical`).
        severity: &'static str,
        /// The alerted job, when the rule is job-scoped.
        job: Option<JobId>,
        /// One-line incident description.
        message: String,
    },
    /// The auto root-causer classified an untriaged problem.
    Diagnosis {
        /// The diagnosed job.
        job: JobId,
        /// Classified cause label, e.g. `dependency_failure`.
        cause: String,
        /// Mitigation label, e.g. `alert_and_wait`.
        mitigation: String,
        /// One-line rationale for the runbook.
        rationale: String,
    },
}

impl TraceData {
    /// Stable snake_case kind tag (JSON, digests, CLI output).
    pub fn kind(&self) -> &'static str {
        match self {
            TraceData::RoundStart { .. } => "round",
            TraceData::FaultEdge { .. } => "fault_edge",
            TraceData::Symptom { .. } => "symptom",
            TraceData::ScalingAction { .. } => "scaling_action",
            TraceData::Failover { .. } => "failover",
            TraceData::RebalancePlan { .. } => "rebalance_plan",
            TraceData::ShardMove { .. } => "shard_move",
            TraceData::SyncOutcome { .. } => "sync_outcome",
            TraceData::Quarantine { .. } => "quarantine",
            TraceData::OomRestart { .. } => "oom_restart",
            TraceData::CheckpointClamp { .. } => "checkpoint_clamp",
            TraceData::ContainerRevived { .. } => "container_revived",
            TraceData::StandbyPlaced { .. } => "standby_placed",
            TraceData::StandbyPromoted { .. } => "standby_promoted",
            TraceData::SloRecovery { .. } => "slo_recovery",
            TraceData::Incident { .. } => "incident",
            TraceData::Diagnosis { .. } => "diagnosis",
        }
    }

    /// The job this record is about, if it is job-scoped.
    pub fn job(&self) -> Option<JobId> {
        match self {
            TraceData::Symptom { job, .. }
            | TraceData::ScalingAction { job, .. }
            | TraceData::SyncOutcome { job, .. }
            | TraceData::Quarantine { job }
            | TraceData::CheckpointClamp { job, .. }
            | TraceData::StandbyPlaced { job, .. }
            | TraceData::StandbyPromoted { job, .. }
            | TraceData::SloRecovery { job, .. }
            | TraceData::Diagnosis { job, .. } => Some(*job),
            TraceData::OomRestart { task, .. } => Some(task.job),
            TraceData::Incident { job, .. } => *job,
            _ => None,
        }
    }

    /// True for records that represent a consequential platform decision
    /// (the records `--explain` anchors a causal chain on). Spans, fault
    /// edges, and symptoms are chain *links*, not decisions.
    pub fn is_decision(&self) -> bool {
        matches!(
            self,
            TraceData::ScalingAction { .. }
                | TraceData::Failover { .. }
                | TraceData::RebalancePlan { .. }
                | TraceData::ShardMove { .. }
                | TraceData::SyncOutcome { .. }
                | TraceData::Quarantine { .. }
                | TraceData::OomRestart { .. }
                | TraceData::CheckpointClamp { .. }
                | TraceData::StandbyPlaced { .. }
                | TraceData::StandbyPromoted { .. }
                | TraceData::Incident { .. }
                | TraceData::Diagnosis { .. }
        )
    }

    /// One-line human summary (dashboards, `--explain` chains).
    pub fn summary(&self) -> String {
        match self {
            TraceData::RoundStart { component } => format!("{component} round"),
            TraceData::FaultEdge { fault, activated } => {
                let verb = if *activated { "activated" } else { "cleared" };
                format!("fault {verb}: {fault}")
            }
            TraceData::Symptom { job, description } => format!("{job} symptom: {description}"),
            TraceData::ScalingAction { job, action } => format!("{job} scaled: {action}"),
            TraceData::Failover { moves } => format!("fail-over moved {moves} shard(s)"),
            TraceData::RebalancePlan { moves } => format!("rebalance moved {moves} shard(s)"),
            TraceData::ShardMove { shard, to } => format!("{shard} moved to {to}"),
            TraceData::SyncOutcome { job, outcome } => format!("{job} sync: {outcome}"),
            TraceData::Quarantine { job } => format!("{job} quarantined"),
            TraceData::OomRestart { task, container } => {
                format!("{task} OOM-killed on {container}, restart scheduled")
            }
            TraceData::CheckpointClamp {
                job,
                partition,
                from,
                to,
            } => format!("{job} p{partition} checkpoint clamped {from} → {to} (beyond tail)"),
            TraceData::ContainerRevived {
                container,
                stale_shards,
            } => format!(
                "{container} revived after being declared dead ({stale_shards} stale shard(s))"
            ),
            TraceData::StandbyPlaced { job, container } => {
                format!("{job} warm standby placed on {container}")
            }
            TraceData::StandbyPromoted { job, to, moves } => {
                format!("{job} standby on {to} promoted ({moves} shard(s) handed over)")
            }
            TraceData::SloRecovery {
                job,
                tier,
                ms,
                fast,
            } => {
                let path = if *fast { "fast path" } else { "full sync" };
                format!("{job} ({tier}) recovered in {ms}ms via {path}")
            }
            TraceData::Incident {
                rule,
                severity,
                message,
                ..
            } => format!("[{severity}] alert {rule} fired: {message}"),
            TraceData::Diagnosis {
                job,
                cause,
                mitigation,
                rationale,
            } => format!("{job} diagnosed {cause} (mitigation: {mitigation}) — {rationale}"),
        }
    }

    /// Feed the payload's stable byte encoding into a digest function.
    /// Strings are length-free (terminated by the field boundary byte) but
    /// the kind tag plus field order make the encoding unambiguous for the
    /// payloads we produce.
    pub(crate) fn digest_into(&self, eat: &mut impl FnMut(&[u8])) {
        eat(self.kind().as_bytes());
        let mut field = |bytes: &[u8]| {
            eat(&[0xFE]);
            eat(bytes);
        };
        match self {
            TraceData::RoundStart { component } => field(component.name().as_bytes()),
            TraceData::FaultEdge { fault, activated } => {
                field(fault.as_bytes());
                field(&[*activated as u8]);
            }
            TraceData::Symptom { job, description } => {
                field(&job.raw().to_le_bytes());
                field(description.as_bytes());
            }
            TraceData::ScalingAction { job, action } => {
                field(&job.raw().to_le_bytes());
                field(action.as_bytes());
            }
            TraceData::Failover { moves } | TraceData::RebalancePlan { moves } => {
                field(&(*moves as u64).to_le_bytes());
            }
            TraceData::ShardMove { shard, to } => {
                field(&shard.raw().to_le_bytes());
                field(&to.raw().to_le_bytes());
            }
            TraceData::SyncOutcome { job, outcome } => {
                field(&job.raw().to_le_bytes());
                field(outcome.as_bytes());
            }
            TraceData::Quarantine { job } => field(&job.raw().to_le_bytes()),
            TraceData::OomRestart { task, container } => {
                field(&task.job.raw().to_le_bytes());
                field(&task.index.to_le_bytes());
                field(&container.raw().to_le_bytes());
            }
            TraceData::CheckpointClamp {
                job,
                partition,
                from,
                to,
            } => {
                field(&job.raw().to_le_bytes());
                field(&partition.to_le_bytes());
                field(&from.to_le_bytes());
                field(&to.to_le_bytes());
            }
            TraceData::ContainerRevived {
                container,
                stale_shards,
            } => {
                field(&container.raw().to_le_bytes());
                field(&(*stale_shards as u64).to_le_bytes());
            }
            TraceData::StandbyPlaced { job, container } => {
                field(&job.raw().to_le_bytes());
                field(&container.raw().to_le_bytes());
            }
            TraceData::StandbyPromoted { job, to, moves } => {
                field(&job.raw().to_le_bytes());
                field(&to.raw().to_le_bytes());
                field(&(*moves as u64).to_le_bytes());
            }
            TraceData::SloRecovery {
                job,
                tier,
                ms,
                fast,
            } => {
                field(&job.raw().to_le_bytes());
                field(tier.as_bytes());
                field(&ms.to_le_bytes());
                field(&[*fast as u8]);
            }
            TraceData::Incident {
                rule,
                severity,
                job,
                message,
            } => {
                field(rule.as_bytes());
                field(severity.as_bytes());
                field(&job.map_or(u64::MAX, |j| j.raw()).to_le_bytes());
                field(message.as_bytes());
            }
            TraceData::Diagnosis {
                job,
                cause,
                mitigation,
                rationale,
            } => {
                field(&job.raw().to_le_bytes());
                field(cause.as_bytes());
                field(mitigation.as_bytes());
                field(rationale.as_bytes());
            }
        }
    }
}

/// One trace record: when, why (the cause link), and what.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// This record's id.
    pub id: TraceId,
    /// Simulated time of the record.
    pub at: SimTime,
    /// The record (span or prior event) that triggered this one, if known.
    pub cause: Option<TraceId>,
    /// The typed payload.
    pub data: TraceData,
}

impl TraceEvent {
    /// Render the record as one JSON line (the JSONL export format). All
    /// fields are stable; free-text goes through [`json_escape`].
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(96);
        out.push_str(&format!(
            "{{\"id\":{},\"t_ms\":{},\"kind\":\"{}\"",
            self.id.0,
            self.at.as_millis(),
            self.data.kind()
        ));
        if let Some(cause) = self.cause {
            out.push_str(&format!(",\"cause\":{}", cause.0));
        }
        if let Some(job) = self.data.job() {
            out.push_str(&format!(",\"job\":{}", job.raw()));
        }
        match &self.data {
            TraceData::RoundStart { component } => {
                out.push_str(&format!(",\"component\":\"{component}\""));
            }
            TraceData::FaultEdge { fault, activated } => {
                out.push_str(&format!(
                    ",\"fault\":\"{}\",\"activated\":{activated}",
                    json_escape(fault)
                ));
            }
            TraceData::Symptom { description, .. } => {
                out.push_str(&format!(",\"symptom\":\"{}\"", json_escape(description)));
            }
            TraceData::ScalingAction { action, .. } => {
                out.push_str(&format!(",\"action\":\"{}\"", json_escape(action)));
            }
            TraceData::Failover { moves } | TraceData::RebalancePlan { moves } => {
                out.push_str(&format!(",\"moves\":{moves}"));
            }
            TraceData::ShardMove { shard, to } => {
                out.push_str(&format!(",\"shard\":{},\"to\":{}", shard.raw(), to.raw()));
            }
            TraceData::SyncOutcome { outcome, .. } => {
                out.push_str(&format!(",\"outcome\":\"{outcome}\""));
            }
            TraceData::Quarantine { .. } => {}
            TraceData::OomRestart { task, container } => {
                out.push_str(&format!(
                    ",\"task\":{},\"container\":{}",
                    task.index,
                    container.raw()
                ));
            }
            TraceData::CheckpointClamp {
                partition,
                from,
                to,
                ..
            } => {
                out.push_str(&format!(
                    ",\"partition\":{partition},\"from\":{from},\"to\":{to}"
                ));
            }
            TraceData::ContainerRevived {
                container,
                stale_shards,
            } => {
                out.push_str(&format!(
                    ",\"container\":{},\"stale_shards\":{stale_shards}",
                    container.raw()
                ));
            }
            TraceData::StandbyPlaced { container, .. } => {
                out.push_str(&format!(",\"container\":{}", container.raw()));
            }
            TraceData::StandbyPromoted { to, moves, .. } => {
                out.push_str(&format!(",\"to\":{},\"moves\":{moves}", to.raw()));
            }
            TraceData::SloRecovery { tier, ms, fast, .. } => {
                out.push_str(&format!(",\"tier\":\"{tier}\",\"ms\":{ms},\"fast\":{fast}"));
            }
            TraceData::Incident {
                rule,
                severity,
                message,
                ..
            } => {
                out.push_str(&format!(
                    ",\"rule\":\"{}\",\"severity\":\"{severity}\",\"message\":\"{}\"",
                    json_escape(rule),
                    json_escape(message)
                ));
            }
            TraceData::Diagnosis {
                cause,
                mitigation,
                rationale,
                ..
            } => {
                out.push_str(&format!(
                    ",\"cause_class\":\"{}\",\"mitigation\":\"{}\",\"rationale\":\"{}\"",
                    json_escape(cause),
                    json_escape(mitigation),
                    json_escape(rationale)
                ));
            }
        }
        out.push('}');
        out
    }
}

/// Escape a string for embedding in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

use turbine_types::{Snap, SnapError, SnapReader, SnapWriter};

impl Snap for TraceId {
    fn snap(&self, w: &mut SnapWriter) {
        w.u64(self.0);
    }

    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(TraceId(r.u64("TraceId")?))
    }
}

impl Snap for Component {
    fn snap(&self, w: &mut SnapWriter) {
        w.u8(self.index() as u8);
    }

    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let tag = r.u8("Component.tag")?;
        COMPONENTS
            .get(tag as usize)
            .copied()
            .ok_or(SnapError::Tag("Component", tag as u64))
    }
}

/// Intern a decoded string back to the `&'static str` vocabulary a trace
/// field draws from. Restore must reproduce pointer-free static strings, so
/// any value outside the table is a corrupt blob, not a new vocabulary word.
fn intern_static(
    what: &'static str,
    table: &[&'static str],
    value: &str,
) -> Result<&'static str, SnapError> {
    table
        .iter()
        .copied()
        .find(|s| *s == value)
        .ok_or(SnapError::Value(what))
}

const SYNC_OUTCOMES: [&str; 4] = ["started", "simple", "complex_completed", "deleted"];
const SLO_TIERS: [&str; 3] = ["best_effort", "standard", "critical"];
const SEVERITIES: [&str; 3] = ["info", "warning", "critical"];

impl Snap for TraceData {
    fn snap(&self, w: &mut SnapWriter) {
        match self {
            TraceData::RoundStart { component } => {
                w.u8(0);
                w.put(component);
            }
            TraceData::FaultEdge { fault, activated } => {
                w.u8(1);
                w.put(fault);
                w.put(activated);
            }
            TraceData::Symptom { job, description } => {
                w.u8(2);
                w.put(job);
                w.put(description);
            }
            TraceData::ScalingAction { job, action } => {
                w.u8(3);
                w.put(job);
                w.put(action);
            }
            TraceData::Failover { moves } => {
                w.u8(4);
                w.put(moves);
            }
            TraceData::RebalancePlan { moves } => {
                w.u8(5);
                w.put(moves);
            }
            TraceData::ShardMove { shard, to } => {
                w.u8(6);
                w.put(shard);
                w.put(to);
            }
            TraceData::SyncOutcome { job, outcome } => {
                w.u8(7);
                w.put(job);
                w.put(&outcome.to_string());
            }
            TraceData::Quarantine { job } => {
                w.u8(8);
                w.put(job);
            }
            TraceData::OomRestart { task, container } => {
                w.u8(9);
                w.put(task);
                w.put(container);
            }
            TraceData::CheckpointClamp {
                job,
                partition,
                from,
                to,
            } => {
                w.u8(10);
                w.put(job);
                w.u64(*partition);
                w.u64(*from);
                w.u64(*to);
            }
            TraceData::ContainerRevived {
                container,
                stale_shards,
            } => {
                w.u8(11);
                w.put(container);
                w.put(stale_shards);
            }
            TraceData::StandbyPlaced { job, container } => {
                w.u8(12);
                w.put(job);
                w.put(container);
            }
            TraceData::StandbyPromoted { job, to, moves } => {
                w.u8(13);
                w.put(job);
                w.put(to);
                w.put(moves);
            }
            TraceData::SloRecovery {
                job,
                tier,
                ms,
                fast,
            } => {
                w.u8(14);
                w.put(job);
                w.put(&tier.to_string());
                w.u64(*ms);
                w.put(fast);
            }
            TraceData::Incident {
                rule,
                severity,
                job,
                message,
            } => {
                w.u8(15);
                w.put(rule);
                w.put(&severity.to_string());
                w.put(job);
                w.put(message);
            }
            TraceData::Diagnosis {
                job,
                cause,
                mitigation,
                rationale,
            } => {
                w.u8(16);
                w.put(job);
                w.put(cause);
                w.put(mitigation);
                w.put(rationale);
            }
        }
    }

    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        match r.u8("TraceData.tag")? {
            0 => Ok(TraceData::RoundStart {
                component: r.get()?,
            }),
            1 => Ok(TraceData::FaultEdge {
                fault: r.get()?,
                activated: r.get()?,
            }),
            2 => Ok(TraceData::Symptom {
                job: r.get()?,
                description: r.get()?,
            }),
            3 => Ok(TraceData::ScalingAction {
                job: r.get()?,
                action: r.get()?,
            }),
            4 => Ok(TraceData::Failover { moves: r.get()? }),
            5 => Ok(TraceData::RebalancePlan { moves: r.get()? }),
            6 => Ok(TraceData::ShardMove {
                shard: r.get()?,
                to: r.get()?,
            }),
            7 => Ok(TraceData::SyncOutcome {
                job: r.get()?,
                outcome: intern_static(
                    "TraceData.sync_outcome",
                    &SYNC_OUTCOMES,
                    &r.get::<String>()?,
                )?,
            }),
            8 => Ok(TraceData::Quarantine { job: r.get()? }),
            9 => Ok(TraceData::OomRestart {
                task: r.get()?,
                container: r.get()?,
            }),
            10 => Ok(TraceData::CheckpointClamp {
                job: r.get()?,
                partition: r.u64("TraceData.partition")?,
                from: r.u64("TraceData.from")?,
                to: r.u64("TraceData.to")?,
            }),
            11 => Ok(TraceData::ContainerRevived {
                container: r.get()?,
                stale_shards: r.get()?,
            }),
            12 => Ok(TraceData::StandbyPlaced {
                job: r.get()?,
                container: r.get()?,
            }),
            13 => Ok(TraceData::StandbyPromoted {
                job: r.get()?,
                to: r.get()?,
                moves: r.get()?,
            }),
            14 => Ok(TraceData::SloRecovery {
                job: r.get()?,
                tier: intern_static("TraceData.slo_tier", &SLO_TIERS, &r.get::<String>()?)?,
                ms: r.u64("TraceData.ms")?,
                fast: r.get()?,
            }),
            15 => Ok(TraceData::Incident {
                rule: r.get()?,
                severity: intern_static("TraceData.severity", &SEVERITIES, &r.get::<String>()?)?,
                job: r.get()?,
                message: r.get()?,
            }),
            16 => Ok(TraceData::Diagnosis {
                job: r.get()?,
                cause: r.get()?,
                mitigation: r.get()?,
                rationale: r.get()?,
            }),
            tag => Err(SnapError::Tag("TraceData", tag as u64)),
        }
    }
}

impl Snap for TraceEvent {
    fn snap(&self, w: &mut SnapWriter) {
        w.put(&self.id);
        w.put(&self.at);
        w.put(&self.cause);
        w.put(&self.data);
    }

    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(TraceEvent {
            id: r.get()?,
            at: r.get()?,
            cause: r.get()?,
            data: r.get()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use turbine_types::Duration;

    #[test]
    fn component_names_roundtrip() {
        for (i, &c) in COMPONENTS.iter().enumerate() {
            assert_eq!(c.index(), i);
            assert_eq!(Component::parse(c.name()), Some(c));
        }
        assert_eq!(Component::parse("nope"), None);
    }

    #[test]
    fn job_extraction_and_decision_classes() {
        let d = TraceData::Diagnosis {
            job: JobId(7),
            cause: "hardware_issue".into(),
            mitigation: "move_task".into(),
            rationale: "r".into(),
        };
        assert_eq!(d.job(), Some(JobId(7)));
        assert!(d.is_decision());
        let s = TraceData::RoundStart {
            component: Component::AutoScaler,
        };
        assert_eq!(s.job(), None);
        assert!(!s.is_decision());
        let o = TraceData::OomRestart {
            task: TaskId::new(JobId(3), 2),
            container: ContainerId(9),
        };
        assert_eq!(o.job(), Some(JobId(3)));
    }

    #[test]
    fn resiliency_records_classify_and_serialize() {
        let placed = TraceData::StandbyPlaced {
            job: JobId(2),
            container: ContainerId(11),
        };
        assert_eq!(placed.job(), Some(JobId(2)));
        assert!(placed.is_decision());
        let promoted = TraceData::StandbyPromoted {
            job: JobId(2),
            to: ContainerId(11),
            moves: 3,
        };
        assert!(promoted.is_decision());
        let revived = TraceData::ContainerRevived {
            container: ContainerId(11),
            stale_shards: 0,
        };
        assert_eq!(revived.job(), None);
        assert!(!revived.is_decision());
        let recovery = TraceData::SloRecovery {
            job: JobId(2),
            tier: "critical",
            ms: 20_000,
            fast: true,
        };
        assert!(!recovery.is_decision());
        let e = TraceEvent {
            id: TraceId(1),
            at: SimTime::ZERO,
            cause: None,
            data: recovery,
        };
        let json = e.to_json();
        assert!(json.contains("\"tier\":\"critical\""), "{json}");
        assert!(json.contains("\"ms\":20000"), "{json}");
        assert!(json.contains("\"fast\":true"), "{json}");
    }

    #[test]
    fn json_lines_are_well_formed() {
        let e = TraceEvent {
            id: TraceId(4),
            at: SimTime::ZERO + Duration::from_secs(30),
            cause: Some(TraceId(2)),
            data: TraceData::FaultEdge {
                fault: "scribe_stall(\"clicks\")".into(),
                activated: true,
            },
        };
        let json = e.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"cause\":2"));
        assert!(json.contains("\\\"clicks\\\""), "{json}");
    }

    #[test]
    fn json_escape_handles_controls() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }
}
