//! Wall-clock round-latency histograms.
//!
//! These measure the *host* cost of each control-component dispatch —
//! real nanoseconds, not simulated time — so they feed the tracing
//! overhead bench (`BENCH_trace.json`) and operator profiling. They are
//! deliberately kept out of the trace digest: wall-clock readings differ
//! across runs and machines, while the digest must be bit-for-bit
//! reproducible.

/// Number of power-of-two buckets. Bucket `i` counts samples in
/// `[2^i, 2^(i+1))` ns; the last bucket absorbs everything larger
/// (`2^29` ns ≈ 0.5 s, far beyond any sane round).
pub const LATENCY_BUCKETS: usize = 30;

/// A power-of-two histogram of wall-clock round latencies, with exact
/// count/total/max so means are not quantized.
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    /// Rounds recorded.
    pub count: u64,
    /// Sum of all samples, nanoseconds.
    pub total_ns: u64,
    /// Largest sample, nanoseconds.
    pub max_ns: u64,
    buckets: [u64; LATENCY_BUCKETS],
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            count: 0,
            total_ns: 0,
            max_ns: 0,
            buckets: [0; LATENCY_BUCKETS],
        }
    }
}

impl LatencyHistogram {
    /// Record one round's wall-clock latency.
    pub fn record(&mut self, ns: u64) {
        self.count += 1;
        self.total_ns += ns;
        self.max_ns = self.max_ns.max(ns);
        let bucket = (63 - ns.max(1).leading_zeros() as usize).min(LATENCY_BUCKETS - 1);
        self.buckets[bucket] += 1;
    }

    /// Mean latency in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> u64 {
        self.total_ns.checked_div(self.count).unwrap_or(0)
    }

    /// Approximate quantile: the upper bound of the bucket containing the
    /// `q`-th sample (`None` when empty). Bucket resolution is a factor of
    /// two, which is plenty for an overhead budget check.
    pub fn quantile_ns(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                return Some(1u64 << (i + 1));
            }
        }
        Some(self.max_ns)
    }

    /// The raw bucket counts (bucket `i` = `[2^i, 2^(i+1))` ns).
    pub fn buckets(&self) -> &[u64; LATENCY_BUCKETS] {
        &self.buckets
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_summarizes() {
        let mut h = LatencyHistogram::default();
        for ns in [100, 200, 400, 800, 100_000] {
            h.record(ns);
        }
        assert_eq!(h.count, 5);
        assert_eq!(h.mean_ns(), (100 + 200 + 400 + 800 + 100_000) / 5);
        assert_eq!(h.max_ns, 100_000);
        // p50 = 3rd of 5 samples (400 ns), bucket [256, 512).
        assert_eq!(h.quantile_ns(0.5), Some(512));
        // p100 falls in the bucket holding 100 µs.
        assert!(h.quantile_ns(1.0).expect("non-empty") >= 100_000);
    }

    #[test]
    fn empty_histogram_is_quiet() {
        let h = LatencyHistogram::default();
        assert_eq!(h.mean_ns(), 0);
        assert_eq!(h.quantile_ns(0.5), None);
    }

    #[test]
    fn zero_sample_lands_in_first_bucket() {
        let mut h = LatencyHistogram::default();
        h.record(0);
        assert_eq!(h.buckets()[0], 1);
    }
}
