//! The bounded trace buffer: ring storage, lazy dispatch spans, cause
//! context, and the incremental replay digest.

use crate::event::{Component, TraceData, TraceEvent, TraceId, COMPONENTS};
use crate::latency::LatencyHistogram;
use std::collections::{BTreeMap, VecDeque};
use turbine_types::{JobId, SimTime};

/// Default ring capacity: enough to keep every consequential record of a
/// 48-hour soak while bounding memory on any horizon.
pub const DEFAULT_TRACE_CAPACITY: usize = 8192;

/// A deterministic, bounded causal trace of control-plane decisions.
///
/// The buffer is a ring: records past `capacity` evict the oldest, but
/// record ids are a monotone sequence and the [`digest`](Self::digest)
/// covers every record ever pushed, so two runs can be compared bit-for-
/// bit regardless of eviction. Recording is purely observational — the
/// buffer never feeds back into the simulation, so tracing on vs off
/// cannot change platform state.
///
/// # Spans and cause links
///
/// Each control-component dispatch opens a *span* with
/// [`begin_round`](Self::begin_round). The span is lazy: it is committed
/// to the ring only when the round emits its first record (an empty
/// heartbeat round leaves no trace). A record's cause defaults to the
/// innermost entry of the explicit cause stack
/// ([`push_cause`](Self::push_cause)), falling back to the current span.
#[derive(Debug, Clone)]
pub struct TraceBuffer {
    enabled: bool,
    capacity: usize,
    next_id: u64,
    events: VecDeque<TraceEvent>,
    digest: u64,
    pending_span: Option<(SimTime, Component)>,
    current_span: Option<TraceId>,
    context: Vec<TraceId>,
    active_faults: BTreeMap<String, TraceId>,
    latency: Vec<LatencyHistogram>,
}

impl TraceBuffer {
    /// An enabled buffer with the given ring capacity (min 16).
    pub fn new(capacity: usize) -> Self {
        TraceBuffer {
            enabled: true,
            capacity: capacity.max(16),
            next_id: 0,
            events: VecDeque::new(),
            digest: 0xcbf2_9ce4_8422_2325, // FNV-1a offset basis
            pending_span: None,
            current_span: None,
            context: Vec::new(),
            active_faults: BTreeMap::new(),
            latency: vec![LatencyHistogram::default(); COMPONENTS.len()],
        }
    }

    /// A disabled buffer: every recording call is a cheap no-op.
    pub fn disabled() -> Self {
        let mut buffer = Self::new(16);
        buffer.enabled = false;
        buffer
    }

    /// Whether recording is on.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Open the dispatch span for a component round. The span is only
    /// committed if the round emits a record.
    pub fn begin_round(&mut self, at: SimTime, component: Component) {
        if !self.enabled {
            return;
        }
        debug_assert!(
            self.context.is_empty(),
            "cause context leaked across rounds"
        );
        self.pending_span = Some((at, component));
        self.current_span = None;
    }

    /// Close the dispatch span. `wall_ns`, when measured, feeds the
    /// component's wall-clock latency histogram (never the digest).
    pub fn end_round(&mut self, component: Component, wall_ns: Option<u64>) {
        if let Some(ns) = wall_ns {
            self.latency[component.index()].record(ns);
        }
        self.pending_span = None;
        self.current_span = None;
        self.context.clear();
    }

    /// Push an explicit cause for subsequent records (innermost wins).
    pub fn push_cause(&mut self, cause: TraceId) {
        if self.enabled {
            self.context.push(cause);
        }
    }

    /// Pop the innermost explicit cause.
    pub fn pop_cause(&mut self) {
        self.context.pop();
    }

    /// Record an event; its cause defaults to the innermost pushed cause,
    /// falling back to the current round's span. The span commits on the
    /// first record of the round regardless of which cause wins, so every
    /// in-round record is attributable to its round. Returns the record
    /// id, or `None` when disabled.
    pub fn emit(&mut self, at: SimTime, data: TraceData) -> Option<TraceId> {
        if !self.enabled {
            return None;
        }
        let span = self.commit_span();
        let cause = self.context.last().copied().or(span);
        Some(self.push(at, cause, data))
    }

    /// Record an event with an explicit cause (or an explicit root). The
    /// round's span still commits — the stream stays self-describing (every
    /// record is attributable to the round that emitted it) even when the
    /// chain links elsewhere.
    pub fn emit_caused(
        &mut self,
        at: SimTime,
        data: TraceData,
        cause: Option<TraceId>,
    ) -> Option<TraceId> {
        if !self.enabled {
            return None;
        }
        self.commit_span();
        Some(self.push(at, cause, data))
    }

    /// Record a chaos-engine fault edge. Activations are chain roots;
    /// clearances link back to their activation. Returns the record id.
    pub fn note_fault_edge(
        &mut self,
        at: SimTime,
        label: &str,
        activated: bool,
    ) -> Option<TraceId> {
        if !self.enabled {
            return None;
        }
        let cause = if activated {
            None
        } else {
            self.active_faults.remove(label)
        };
        let id = self.push(
            at,
            cause,
            TraceData::FaultEdge {
                fault: label.to_string(),
                activated,
            },
        );
        if activated {
            self.active_faults.insert(label.to_string(), id);
        }
        Some(id)
    }

    /// The activation record of a currently-active fault, by label — the
    /// root symptoms of that fault link their chains to.
    pub fn fault_cause(&self, label: &str) -> Option<TraceId> {
        self.active_faults.get(label).copied()
    }

    fn commit_span(&mut self) -> Option<TraceId> {
        if let Some((at, component)) = self.pending_span.take() {
            let id = self.push(at, None, TraceData::RoundStart { component });
            self.current_span = Some(id);
        }
        self.current_span
    }

    fn push(&mut self, at: SimTime, cause: Option<TraceId>, data: TraceData) -> TraceId {
        let id = TraceId(self.next_id);
        self.next_id += 1;
        self.digest_event(id, at, cause, &data);
        if self.events.len() == self.capacity {
            self.events.pop_front();
        }
        self.events.push_back(TraceEvent {
            id,
            at,
            cause,
            data,
        });
        id
    }

    fn digest_event(&mut self, id: TraceId, at: SimTime, cause: Option<TraceId>, data: &TraceData) {
        let mut hash = self.digest;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                hash ^= b as u64;
                hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
            }
        };
        eat(&id.0.to_le_bytes());
        eat(&at.as_millis().to_le_bytes());
        eat(&cause.map_or(u64::MAX, |c| c.0).to_le_bytes());
        data.digest_into(&mut eat);
        eat(b"\n");
        self.digest = hash;
    }

    /// FNV-1a digest over every record ever pushed (including evicted
    /// ones). Two runs produced the identical decision trace iff their
    /// digests match. Wall-clock latencies are excluded by construction.
    pub fn digest(&self) -> u64 {
        self.digest
    }

    /// Records currently retained, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Retained record count.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Total records ever pushed (retained + evicted).
    pub fn total_recorded(&self) -> u64 {
        self.next_id
    }

    /// Records evicted by the ring bound.
    pub fn evicted(&self) -> u64 {
        self.next_id - self.events.len() as u64
    }

    /// The ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Look up a retained record by id (`None` if evicted or never
    /// recorded). O(1): ids are dense and in ring order.
    pub fn get(&self, id: TraceId) -> Option<&TraceEvent> {
        let first = self.events.front()?.id.0;
        let offset = id.0.checked_sub(first)?;
        self.events.get(offset as usize)
    }

    /// The causal chain ending at `id`: the record itself, then each cause
    /// hop, oldest-cause last. Stops at a root, an evicted hop, or a
    /// safety bound of 64 hops.
    pub fn chain(&self, id: TraceId) -> Vec<&TraceEvent> {
        let mut chain = Vec::new();
        let mut next = Some(id);
        while let Some(id) = next {
            let Some(event) = self.get(id) else {
                break;
            };
            chain.push(event);
            if chain.len() >= 64 {
                break;
            }
            next = event.cause;
        }
        chain
    }

    /// The most recent retained *decision* record about `job`.
    pub fn last_decision_for(&self, job: JobId) -> Option<&TraceEvent> {
        self.events
            .iter()
            .rev()
            .find(|e| e.data.is_decision() && e.data.job() == Some(job))
    }

    /// Up to `limit` most recent decision records about `job`, newest
    /// first.
    pub fn decisions_for(&self, job: JobId, limit: usize) -> Vec<&TraceEvent> {
        self.events
            .iter()
            .rev()
            .filter(|e| e.data.is_decision() && e.data.job() == Some(job))
            .take(limit)
            .collect()
    }

    /// Export the retained records as JSONL (one record per line).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for event in &self.events {
            out.push_str(&event.to_json());
            out.push('\n');
        }
        out
    }

    /// Per-component wall-clock round-latency histograms.
    pub fn latencies(&self) -> impl Iterator<Item = (Component, &LatencyHistogram)> {
        COMPONENTS
            .iter()
            .enumerate()
            .map(move |(i, &c)| (c, &self.latency[i]))
    }
}

impl Default for TraceBuffer {
    fn default() -> Self {
        Self::new(DEFAULT_TRACE_CAPACITY)
    }
}

impl turbine_types::Snap for TraceBuffer {
    fn snap(&self, w: &mut turbine_types::SnapWriter) {
        w.put(&self.enabled);
        w.put(&self.capacity);
        w.u64(self.next_id);
        w.put(&self.events);
        w.u64(self.digest);
        w.put(&self.active_faults);
    }

    fn unsnap(r: &mut turbine_types::SnapReader<'_>) -> Result<Self, turbine_types::SnapError> {
        let enabled = r.get()?;
        let capacity: usize = r.get()?;
        let next_id = r.u64("TraceBuffer.next_id")?;
        let events: VecDeque<TraceEvent> = r.get()?;
        let digest = r.u64("TraceBuffer.digest")?;
        let active_faults = r.get()?;
        if capacity < 16 {
            return Err(turbine_types::SnapError::Value(
                "TraceBuffer capacity below minimum",
            ));
        }
        if events.len() > capacity || events.len() as u64 > next_id {
            return Err(turbine_types::SnapError::Value(
                "TraceBuffer retained events exceed capacity or id sequence",
            ));
        }
        // Spans, cause context, and wall-clock latency never carry across a
        // snapshot boundary: captures happen between rounds, and latencies
        // are observational (excluded from the digest by construction).
        Ok(TraceBuffer {
            enabled,
            capacity,
            next_id,
            events,
            digest,
            pending_span: None,
            current_span: None,
            context: Vec::new(),
            active_faults,
            latency: vec![LatencyHistogram::default(); COMPONENTS.len()],
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use turbine_types::Duration;

    fn t(secs: u64) -> SimTime {
        SimTime::ZERO + Duration::from_secs(secs)
    }

    fn symptom(job: u64) -> TraceData {
        TraceData::Symptom {
            job: JobId(job),
            description: "lagging".into(),
        }
    }

    #[test]
    fn empty_rounds_leave_no_span() {
        let mut tb = TraceBuffer::new(64);
        tb.begin_round(t(10), Component::Heartbeat);
        tb.end_round(Component::Heartbeat, Some(500));
        assert!(tb.is_empty());
        // Latency still recorded for the empty round.
        let (_, h) = tb
            .latencies()
            .find(|(c, _)| *c == Component::Heartbeat)
            .expect("listed");
        assert_eq!(h.count, 1);
    }

    #[test]
    fn first_emission_commits_the_span_as_cause() {
        let mut tb = TraceBuffer::new(64);
        tb.begin_round(t(30), Component::AutoScaler);
        let id = tb.emit(t(30), symptom(1)).expect("enabled");
        tb.end_round(Component::AutoScaler, None);
        assert_eq!(tb.len(), 2, "span + symptom");
        let event = tb.get(id).expect("retained");
        let span = tb.get(event.cause.expect("caused")).expect("retained");
        assert!(matches!(
            span.data,
            TraceData::RoundStart {
                component: Component::AutoScaler
            }
        ));
        assert!(span.id < id);
    }

    #[test]
    fn explicit_cause_stack_wins_over_span() {
        let mut tb = TraceBuffer::new(64);
        tb.begin_round(t(30), Component::AutoScaler);
        let symptom_id = tb.emit(t(30), symptom(1)).expect("id");
        tb.push_cause(symptom_id);
        let action = tb
            .emit(
                t(30),
                TraceData::ScalingAction {
                    job: JobId(1),
                    action: "horizontal(tasks=8)".into(),
                },
            )
            .expect("id");
        tb.pop_cause();
        tb.end_round(Component::AutoScaler, None);
        assert_eq!(tb.get(action).expect("retained").cause, Some(symptom_id));
        // Chain: action -> symptom -> span.
        let chain = tb.chain(action);
        assert_eq!(chain.len(), 3);
        assert!(matches!(chain[2].data, TraceData::RoundStart { .. }));
    }

    #[test]
    fn fault_clearance_links_to_activation() {
        let mut tb = TraceBuffer::new(64);
        let up = tb
            .note_fault_edge(t(10), "job_store_down", true)
            .expect("id");
        assert_eq!(tb.fault_cause("job_store_down"), Some(up));
        let down = tb
            .note_fault_edge(t(20), "job_store_down", false)
            .expect("id");
        assert_eq!(tb.get(down).expect("retained").cause, Some(up));
        assert_eq!(tb.fault_cause("job_store_down"), None);
    }

    #[test]
    fn ring_bounds_retention_but_not_ids_or_digest() {
        let mut tb = TraceBuffer::new(16);
        for i in 0..100 {
            tb.emit_caused(t(i), symptom(i), None);
        }
        assert_eq!(tb.len(), 16);
        assert_eq!(tb.total_recorded(), 100);
        assert_eq!(tb.evicted(), 84);
        assert!(tb.get(TraceId(0)).is_none(), "evicted");
        assert!(tb.get(TraceId(99)).is_some());
        // Same pushes, larger ring: identical digest (digest covers the
        // full history, not just the retained window).
        let mut big = TraceBuffer::new(1024);
        for i in 0..100 {
            big.emit_caused(t(i), symptom(i), None);
        }
        assert_eq!(tb.digest(), big.digest());
    }

    #[test]
    fn digests_distinguish_timelines() {
        let mut a = TraceBuffer::new(64);
        a.emit_caused(t(10), symptom(1), None);
        let mut b = TraceBuffer::new(64);
        b.emit_caused(t(11), symptom(1), None);
        let mut c = TraceBuffer::new(64);
        c.emit_caused(t(10), symptom(2), None);
        assert_ne!(a.digest(), b.digest());
        assert_ne!(a.digest(), c.digest());
    }

    #[test]
    fn disabled_buffer_is_inert() {
        let mut tb = TraceBuffer::disabled();
        assert!(!tb.enabled());
        tb.begin_round(t(10), Component::Heartbeat);
        assert_eq!(tb.emit(t(10), symptom(1)), None);
        assert_eq!(tb.note_fault_edge(t(10), "f", true), None);
        tb.end_round(Component::Heartbeat, None);
        assert!(tb.is_empty());
        assert_eq!(tb.total_recorded(), 0);
    }

    #[test]
    fn decision_queries_find_the_latest_per_job() {
        let mut tb = TraceBuffer::new(64);
        tb.emit_caused(t(10), symptom(1), None); // not a decision
        let first = tb
            .emit_caused(
                t(20),
                TraceData::ScalingAction {
                    job: JobId(1),
                    action: "vertical(threads=4)".into(),
                },
                None,
            )
            .expect("id");
        let second = tb
            .emit_caused(t(30), TraceData::Quarantine { job: JobId(1) }, None)
            .expect("id");
        tb.emit_caused(t(40), TraceData::Quarantine { job: JobId(2) }, None);
        assert_eq!(tb.last_decision_for(JobId(1)).expect("found").id, second);
        let decisions = tb.decisions_for(JobId(1), 10);
        assert_eq!(
            decisions.iter().map(|e| e.id).collect::<Vec<_>>(),
            vec![second, first]
        );
        assert!(tb.last_decision_for(JobId(9)).is_none());
    }

    #[test]
    fn jsonl_export_has_one_line_per_record() {
        let mut tb = TraceBuffer::new(64);
        tb.note_fault_edge(t(10), "syncer_crash", true);
        tb.emit_caused(t(20), symptom(1), None);
        let jsonl = tb.to_jsonl();
        assert_eq!(jsonl.lines().count(), 2);
        assert!(jsonl
            .lines()
            .all(|l| l.starts_with('{') && l.ends_with('}')));
    }
}
