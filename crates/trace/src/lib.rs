//! Causal decision tracing for the Turbine control plane.
//!
//! Turbine's reproduction records *that* things happened (counters,
//! series); this crate records *why*. Every control-component dispatch
//! opens a span, and every consequential decision — a scaling action, a
//! shard move, a quarantine, an OOM restart, a root-cause diagnosis —
//! emits a typed [`TraceEvent`] carrying a **cause link** to the span or
//! prior record that triggered it. Following cause links reconstructs
//! chains like:
//!
//! ```text
//! job 7 scaled up at t=3600s
//!   <- symptom: lagging 400s (SLO 90s)
//!   <- fault activated: scribe_stall(clicks)
//! ```
//!
//! # Guarantees
//!
//! - **Bounded**: records live in a ring of configurable capacity; a
//!   48-hour soak cannot grow memory without bound.
//! - **Deterministic**: the [`TraceBuffer::digest`] is an incremental
//!   FNV-1a over every record ever pushed (the same pattern as the chaos
//!   engine's `FaultInjector::log_digest`), so two runs with the same
//!   seed produce bit-for-bit identical digests — even though the ring
//!   may have evicted different windows by the time you compare.
//! - **Observational**: the buffer never feeds back into the simulation;
//!   tracing on vs off leaves the platform fingerprint unchanged.
//! - **Cheap**: wall-clock round latencies land in per-component
//!   [`LatencyHistogram`]s (excluded from the digest — they are host
//!   noise), and the overhead bench budgets tracing at <5% of a soak.

mod buffer;
mod event;
mod latency;

pub use buffer::{TraceBuffer, DEFAULT_TRACE_CAPACITY};
pub use event::{json_escape, Component, TraceData, TraceEvent, TraceId, COMPONENTS};
pub use latency::{LatencyHistogram, LATENCY_BUCKETS};
