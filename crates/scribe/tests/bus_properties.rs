//! Property tests for the message bus: offset arithmetic stays consistent
//! under arbitrary append/trim/read interleavings.

use proptest::prelude::*;
use turbine_scribe::{CheckpointStore, Scribe};
use turbine_types::{JobId, PartitionId, SimTime};

#[derive(Debug, Clone)]
enum Op {
    Append { partition: u64, bytes: u64 },
    Trim { partition: u64, offset: u64 },
    Commit { partition: u64, delta: u64 },
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            (0u64..4, 1u64..10_000).prop_map(|(partition, bytes)| Op::Append { partition, bytes }),
            (0u64..4, 0u64..5_000).prop_map(|(partition, offset)| Op::Trim { partition, offset }),
            (0u64..4, 0u64..2_000).prop_map(|(partition, delta)| Op::Commit { partition, delta }),
        ],
        0..80,
    )
}

proptest! {
    /// Tail offsets are monotone; available bytes never exceed the tail;
    /// checkpoints never pass the tail and never regress.
    #[test]
    fn offset_arithmetic_is_consistent(ops in arb_ops()) {
        let mut bus = Scribe::new();
        bus.create_category("c", 4).expect("create");
        let mut checkpoints = CheckpointStore::new();
        let job = JobId(1);
        let mut last_tail = [0u64; 4];

        for op in ops {
            match op {
                Op::Append { partition, bytes } => {
                    bus.append_bytes("c", PartitionId(partition), bytes, SimTime::ZERO)
                        .expect("append");
                }
                Op::Trim { partition, offset } => {
                    bus.trim("c", PartitionId(partition), offset).expect("trim");
                }
                Op::Commit { partition, delta } => {
                    let p = PartitionId(partition);
                    let tail = bus.tail_offset("c", p).expect("tail");
                    let next = (checkpoints.get(job, p) + delta).min(tail);
                    checkpoints.commit(job, p, next);
                }
            }
            for i in 0..4u64 {
                let p = PartitionId(i);
                let tail = bus.tail_offset("c", p).expect("tail");
                prop_assert!(tail >= last_tail[i as usize], "tail must be monotone");
                last_tail[i as usize] = tail;
                // A reader at its checkpoint sees a backlog bounded by the
                // tail, and reading at the tail sees nothing.
                let cp = checkpoints.get(job, p);
                prop_assert!(cp <= tail);
                let available = bus.bytes_available("c", p, cp).expect("available");
                prop_assert!(available <= tail);
                prop_assert_eq!(bus.bytes_available("c", p, tail).expect("at tail"), 0);
            }
        }
    }
}
