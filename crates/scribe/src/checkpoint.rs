//! Checkpoint storage.
//!
//! Each Turbine task reads one or several disjoint Scribe partitions,
//! maintains its own state and checkpoint, and resumes from its own
//! checkpoint on restart (paper §II). Checkpoints are keyed by
//! `(job, partition)` — *not* by task — which is precisely what makes
//! parallelism changes possible: when the task count changes, the State
//! Syncer re-maps partitions to tasks, and each new task picks up the
//! per-partition offsets it now owns. No offset is lost or duplicated as
//! long as no two active tasks ever own the same partition (the isolation
//! property the complex-sync protocol enforces).

use std::collections::BTreeMap;
use turbine_types::{JobId, PartitionId};

/// Durable per-(job, partition) read offsets.
#[derive(Debug, Default, Clone)]
pub struct CheckpointStore {
    offsets: BTreeMap<(JobId, PartitionId), u64>,
}

impl CheckpointStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Offset for `(job, partition)`; zero if never committed.
    pub fn get(&self, job: JobId, partition: PartitionId) -> u64 {
        self.offsets.get(&(job, partition)).copied().unwrap_or(0)
    }

    /// Commit a new offset. Offsets must not move backwards — a regression
    /// means two tasks processed the same data, which is the corruption the
    /// isolation property exists to prevent. Regressions panic in debug
    /// builds and are ignored in release builds.
    pub fn commit(&mut self, job: JobId, partition: PartitionId, offset: u64) {
        let slot = self.offsets.entry((job, partition)).or_insert(0);
        debug_assert!(
            offset >= *slot,
            "checkpoint regression for {job}/{partition}: {offset} < {slot}"
        );
        if offset > *slot {
            *slot = offset;
        }
    }

    /// Clamp a checkpoint down to `max_offset` if it currently sits above
    /// it. Returns `Some((from, to))` when a clamp happened.
    ///
    /// This is the one sanctioned exception to [`commit`](Self::commit)'s
    /// forward-only rule: after a WAL torn-tail salvage the Scribe tail can
    /// legitimately move *backwards* past an already-persisted checkpoint,
    /// and a checkpoint beyond the tail makes every subsequent
    /// `bytes_available` call error forever. Moving the checkpoint back to
    /// the tail re-reads the salvage-lost bytes (at-least-once delivery)
    /// instead of wedging the reader.
    pub fn clamp_to(
        &mut self,
        job: JobId,
        partition: PartitionId,
        max_offset: u64,
    ) -> Option<(u64, u64)> {
        let slot = self.offsets.get_mut(&(job, partition))?;
        if *slot > max_offset {
            let from = *slot;
            *slot = max_offset;
            Some((from, max_offset))
        } else {
            None
        }
    }

    /// All checkpoints of one job, sorted by partition.
    pub fn job_checkpoints(&self, job: JobId) -> Vec<(PartitionId, u64)> {
        self.offsets
            .range((job, PartitionId(0))..=(job, PartitionId(u64::MAX)))
            .map(|(&(_, p), &o)| (p, o))
            .collect()
    }

    /// Sum of offsets of one job across partitions (total bytes ingested).
    pub fn job_total_ingested(&self, job: JobId) -> u64 {
        self.offsets
            .range((job, PartitionId(0))..=(job, PartitionId(u64::MAX)))
            .map(|(_, &o)| o)
            .sum()
    }

    /// Drop all checkpoints of a job (when the job is deleted).
    pub fn remove_job(&mut self, job: JobId) {
        self.offsets.retain(|&(j, _), _| j != job);
    }

    /// Number of stored offsets.
    pub fn len(&self) -> usize {
        self.offsets.len()
    }

    /// True if no offsets are stored.
    pub fn is_empty(&self) -> bool {
        self.offsets.is_empty()
    }
}

impl turbine_types::Snap for CheckpointStore {
    fn snap(&self, w: &mut turbine_types::SnapWriter) {
        w.put(&self.offsets);
    }

    fn unsnap(r: &mut turbine_types::SnapReader<'_>) -> Result<Self, turbine_types::SnapError> {
        Ok(CheckpointStore { offsets: r.get()? })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const JOB_A: JobId = JobId(1);
    const JOB_B: JobId = JobId(2);

    #[test]
    fn unknown_checkpoints_read_zero() {
        let store = CheckpointStore::new();
        assert_eq!(store.get(JOB_A, PartitionId(0)), 0);
    }

    #[test]
    fn commit_and_read_back() {
        let mut store = CheckpointStore::new();
        store.commit(JOB_A, PartitionId(0), 100);
        store.commit(JOB_A, PartitionId(1), 250);
        store.commit(JOB_B, PartitionId(0), 7);
        assert_eq!(store.get(JOB_A, PartitionId(0)), 100);
        assert_eq!(store.get(JOB_A, PartitionId(1)), 250);
        assert_eq!(store.get(JOB_B, PartitionId(0)), 7);
        assert_eq!(store.job_total_ingested(JOB_A), 350);
    }

    #[test]
    fn job_checkpoints_are_isolated_per_job() {
        let mut store = CheckpointStore::new();
        store.commit(JOB_A, PartitionId(3), 30);
        store.commit(JOB_A, PartitionId(1), 10);
        store.commit(JOB_B, PartitionId(1), 99);
        let cps = store.job_checkpoints(JOB_A);
        assert_eq!(cps, vec![(PartitionId(1), 10), (PartitionId(3), 30)]);
    }

    #[test]
    #[cfg_attr(debug_assertions, should_panic(expected = "checkpoint regression"))]
    fn regressions_are_rejected() {
        let mut store = CheckpointStore::new();
        store.commit(JOB_A, PartitionId(0), 100);
        store.commit(JOB_A, PartitionId(0), 50);
        // In release builds the regression is ignored:
        assert_eq!(store.get(JOB_A, PartitionId(0)), 100);
    }

    #[test]
    fn clamp_to_rewinds_only_beyond_tail_checkpoints() {
        let mut store = CheckpointStore::new();
        store.commit(JOB_A, PartitionId(0), 100);
        store.commit(JOB_A, PartitionId(1), 40);
        // Partition 0 sits beyond the (post-salvage) tail of 60: clamped.
        assert_eq!(store.clamp_to(JOB_A, PartitionId(0), 60), Some((100, 60)));
        assert_eq!(store.get(JOB_A, PartitionId(0)), 60);
        // Partition 1 is at or below the tail: untouched.
        assert_eq!(store.clamp_to(JOB_A, PartitionId(1), 60), None);
        assert_eq!(store.get(JOB_A, PartitionId(1)), 40);
        // Never-committed checkpoints are not created by clamping.
        assert_eq!(store.clamp_to(JOB_B, PartitionId(0), 60), None);
        assert!(store.job_checkpoints(JOB_B).is_empty());
        // Forward progress resumes normally after a clamp.
        store.commit(JOB_A, PartitionId(0), 80);
        assert_eq!(store.get(JOB_A, PartitionId(0)), 80);
    }

    #[test]
    fn remove_job_drops_only_that_job() {
        let mut store = CheckpointStore::new();
        store.commit(JOB_A, PartitionId(0), 1);
        store.commit(JOB_B, PartitionId(0), 2);
        store.remove_job(JOB_A);
        assert_eq!(store.get(JOB_A, PartitionId(0)), 0);
        assert_eq!(store.get(JOB_B, PartitionId(0)), 2);
        assert_eq!(store.len(), 1);
    }
}
