//! The message bus: categories, partitions, offsets.

use std::collections::BTreeMap;
use std::fmt;
use turbine_types::{PartitionId, SimTime};

/// Error raised for operations on unknown categories/partitions or invalid
/// offsets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScribeError {
    /// The named category does not exist.
    UnknownCategory(String),
    /// The category exists but the partition index is out of range.
    UnknownPartition(String, PartitionId),
    /// A category with this name already exists.
    CategoryExists(String),
    /// A read offset beyond the partition tail was supplied.
    OffsetBeyondTail {
        /// Offset requested by the reader.
        requested: u64,
        /// Current tail of the partition.
        tail: u64,
    },
}

impl fmt::Display for ScribeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScribeError::UnknownCategory(c) => write!(f, "unknown scribe category '{c}'"),
            ScribeError::UnknownPartition(c, p) => {
                write!(f, "unknown partition {p} in category '{c}'")
            }
            ScribeError::CategoryExists(c) => write!(f, "scribe category '{c}' already exists"),
            ScribeError::OffsetBeyondTail { requested, tail } => {
                write!(f, "read offset {requested} beyond partition tail {tail}")
            }
        }
    }
}

impl std::error::Error for ScribeError {}

/// A stored message: payload plus the byte offset at which it begins.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// Byte offset of the first payload byte within the partition.
    pub offset: u64,
    /// Message payload.
    pub payload: Vec<u8>,
}

/// One partition of a category.
#[derive(Debug, Default)]
struct Partition {
    /// Total bytes ever appended — the tail offset.
    appended: u64,
    /// Bytes trimmed by retention; reads below this offset fail over to
    /// the trim point (data loss is visible to the reader, as in real
    /// Scribe when a lagging reader falls off retention).
    trimmed: u64,
    /// Stored payloads, only when the category retains them.
    records: Vec<Record>,
}

/// One category (topic) with a fixed number of partitions.
#[derive(Debug)]
struct Category {
    partitions: Vec<Partition>,
    retain_payloads: bool,
    /// Total bytes appended across partitions, for rate accounting.
    total_appended: u64,
    last_append_at: SimTime,
}

/// Aggregate statistics of one category.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CategoryStats {
    /// Number of partitions.
    pub partitions: usize,
    /// Total bytes appended across all partitions since creation.
    pub total_appended: u64,
    /// Time of the most recent append.
    pub last_append_at: SimTime,
}

/// The message bus. One instance models the Scribe deployment a Turbine
/// cluster reads from and writes to.
#[derive(Debug, Default)]
pub struct Scribe {
    categories: BTreeMap<String, Category>,
}

impl Scribe {
    /// An empty bus.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create a category with `partitions` partitions that only tracks byte
    /// offsets (the cluster-scale fast path).
    pub fn create_category(&mut self, name: &str, partitions: u32) -> Result<(), ScribeError> {
        self.create_category_inner(name, partitions, false)
    }

    /// Create a category that additionally retains payloads so they can be
    /// read back with [`Scribe::read_records`].
    pub fn create_category_with_payloads(
        &mut self,
        name: &str,
        partitions: u32,
    ) -> Result<(), ScribeError> {
        self.create_category_inner(name, partitions, true)
    }

    fn create_category_inner(
        &mut self,
        name: &str,
        partitions: u32,
        retain_payloads: bool,
    ) -> Result<(), ScribeError> {
        assert!(partitions > 0, "a category needs at least one partition");
        if self.categories.contains_key(name) {
            return Err(ScribeError::CategoryExists(name.to_string()));
        }
        self.categories.insert(
            name.to_string(),
            Category {
                partitions: (0..partitions).map(|_| Partition::default()).collect(),
                retain_payloads,
                total_appended: 0,
                last_append_at: SimTime::ZERO,
            },
        );
        Ok(())
    }

    /// True if the category exists.
    pub fn has_category(&self, name: &str) -> bool {
        self.categories.contains_key(name)
    }

    /// Number of partitions in a category.
    pub fn partition_count(&self, category: &str) -> Result<u32, ScribeError> {
        Ok(self.category(category)?.partitions.len() as u32)
    }

    fn category(&self, name: &str) -> Result<&Category, ScribeError> {
        self.categories
            .get(name)
            .ok_or_else(|| ScribeError::UnknownCategory(name.to_string()))
    }

    fn partition_mut(
        &mut self,
        category: &str,
        partition: PartitionId,
    ) -> Result<(&mut Category, usize), ScribeError> {
        let cat = self
            .categories
            .get_mut(category)
            .ok_or_else(|| ScribeError::UnknownCategory(category.to_string()))?;
        let idx = partition_index(category, &cat.partitions, partition)?;
        Ok((cat, idx))
    }

    fn partition(&self, category: &str, partition: PartitionId) -> Result<&Partition, ScribeError> {
        let cat = self.category(category)?;
        let idx = partition_index(category, &cat.partitions, partition)?;
        Ok(&cat.partitions[idx])
    }

    /// Append `bytes` of traffic to a partition without retaining payloads.
    pub fn append_bytes(
        &mut self,
        category: &str,
        partition: PartitionId,
        bytes: u64,
        at: SimTime,
    ) -> Result<(), ScribeError> {
        let (cat, idx) = self.partition_mut(category, partition)?;
        cat.partitions[idx].appended += bytes;
        cat.total_appended += bytes;
        cat.last_append_at = cat.last_append_at.max(at);
        Ok(())
    }

    /// Append a payload-carrying record; returns its starting offset.
    pub fn append_record(
        &mut self,
        category: &str,
        partition: PartitionId,
        payload: &[u8],
        at: SimTime,
    ) -> Result<u64, ScribeError> {
        let (cat, idx) = self.partition_mut(category, partition)?;
        let retain = cat.retain_payloads;
        let part = &mut cat.partitions[idx];
        let offset = part.appended;
        part.appended += payload.len() as u64;
        if retain {
            part.records.push(Record {
                offset,
                payload: payload.to_vec(),
            });
        }
        cat.total_appended += payload.len() as u64;
        cat.last_append_at = cat.last_append_at.max(at);
        Ok(offset)
    }

    /// Tail offset (total bytes appended) of a partition.
    pub fn tail_offset(&self, category: &str, partition: PartitionId) -> Result<u64, ScribeError> {
        Ok(self.partition(category, partition)?.appended)
    }

    /// Bytes available for reading between `from_offset` and the tail —
    /// per-partition `total_bytes_lagged` in the paper's Eq. 1. An offset
    /// below the trim point reads from the trim point (the reader lost
    /// data to retention). An offset beyond the tail is an error.
    pub fn bytes_available(
        &self,
        category: &str,
        partition: PartitionId,
        from_offset: u64,
    ) -> Result<u64, ScribeError> {
        let part = self.partition(category, partition)?;
        if from_offset > part.appended {
            return Err(ScribeError::OffsetBeyondTail {
                requested: from_offset,
                tail: part.appended,
            });
        }
        Ok(part.appended - from_offset.max(part.trimmed))
    }

    /// Model a WAL torn-tail salvage: the partition's durable tail moves
    /// *backwards* to `new_tail` because bytes past it were found torn at
    /// recovery and dropped. Returns the number of bytes lost. A `new_tail`
    /// at or beyond the current tail is a no-op (nothing was torn).
    ///
    /// This is the one operation that can leave an already-persisted reader
    /// checkpoint beyond the tail; readers are expected to clamp such
    /// checkpoints back (see `CheckpointStore::clamp_to`) and re-read the
    /// lost range.
    pub fn salvage_tail(
        &mut self,
        category: &str,
        partition: PartitionId,
        new_tail: u64,
    ) -> Result<u64, ScribeError> {
        let (cat, idx) = self.partition_mut(category, partition)?;
        let part = &mut cat.partitions[idx];
        if new_tail >= part.appended {
            return Ok(0);
        }
        let lost = part.appended - new_tail;
        part.appended = new_tail;
        part.trimmed = part.trimmed.min(new_tail);
        part.records.retain(|r| r.offset < new_tail);
        cat.total_appended = cat.total_appended.saturating_sub(lost);
        Ok(lost)
    }

    /// Read retained records starting at `from_offset`, at most `max`.
    /// Categories created without payload retention always return an empty
    /// vector.
    pub fn read_records(
        &self,
        category: &str,
        partition: PartitionId,
        from_offset: u64,
        max: usize,
    ) -> Result<Vec<Record>, ScribeError> {
        let part = self.partition(category, partition)?;
        let start = part.records.partition_point(|r| r.offset < from_offset);
        Ok(part.records[start..].iter().take(max).cloned().collect())
    }

    /// Trim a partition up to `offset`: readers below it lose data.
    pub fn trim(
        &mut self,
        category: &str,
        partition: PartitionId,
        offset: u64,
    ) -> Result<(), ScribeError> {
        let (cat, idx) = self.partition_mut(category, partition)?;
        let part = &mut cat.partitions[idx];
        let offset = offset.min(part.appended);
        part.trimmed = part.trimmed.max(offset);
        part.records.retain(|r| r.offset >= offset);
        Ok(())
    }

    /// Batched per-category backlog: the sum of [`Scribe::bytes_available`]
    /// across many partitions of one category, with a single category
    /// lookup instead of two name probes per partition. `cursors` supplies
    /// each partition's read offset in the order the caller wants them
    /// evaluated; partitions the category does not have (yet) contribute
    /// nothing, matching the per-stream path that skips partitions Scribe
    /// has never seen. The first beyond-tail cursor aborts the sum, tagged
    /// with its partition.
    pub fn category_backlog<I>(
        &self,
        category: &str,
        cursors: I,
    ) -> Result<u64, (PartitionId, ScribeError)>
    where
        I: IntoIterator<Item = (PartitionId, u64)>,
    {
        let Ok(cat) = self.category(category) else {
            return Ok(0);
        };
        let mut total = 0u64;
        for (partition, from_offset) in cursors {
            let Ok(idx) = partition_index(category, &cat.partitions, partition) else {
                continue;
            };
            let part = &cat.partitions[idx];
            if from_offset > part.appended {
                return Err((
                    partition,
                    ScribeError::OffsetBeyondTail {
                        requested: from_offset,
                        tail: part.appended,
                    },
                ));
            }
            total += part.appended - from_offset.max(part.trimmed);
        }
        Ok(total)
    }

    /// Mutable single-category view: one name lookup amortized across the
    /// many per-partition operations of a durable-sync pass.
    pub fn category_view(&mut self, name: &str) -> Result<CategoryView<'_>, ScribeError> {
        let cat = self
            .categories
            .get_mut(name)
            .ok_or_else(|| ScribeError::UnknownCategory(name.to_string()))?;
        Ok(CategoryView {
            name: name.to_string(),
            cat,
        })
    }

    /// Aggregate statistics of a category.
    pub fn stats(&self, category: &str) -> Result<CategoryStats, ScribeError> {
        let cat = self.category(category)?;
        Ok(CategoryStats {
            partitions: cat.partitions.len(),
            total_appended: cat.total_appended,
            last_append_at: cat.last_append_at,
        })
    }

    /// Names of all categories, sorted.
    pub fn category_names(&self) -> Vec<&str> {
        self.categories.keys().map(String::as_str).collect()
    }
}

/// A borrowed mutable view of one category (see [`Scribe::category_view`]).
/// Every operation behaves exactly like its [`Scribe`] counterpart on the
/// viewed category, minus the repeated name lookup.
#[derive(Debug)]
pub struct CategoryView<'a> {
    name: String,
    cat: &'a mut Category,
}

impl CategoryView<'_> {
    /// Number of partitions in the viewed category.
    pub fn partition_count(&self) -> u32 {
        self.cat.partitions.len() as u32
    }

    /// Total bytes ever appended to the category (monotone except for
    /// torn-tail salvage, which subtracts the lost range) — a cheap
    /// change detector for the category's durable tails.
    pub fn total_appended(&self) -> u64 {
        self.cat.total_appended
    }

    /// Tail offset of a partition (see [`Scribe::tail_offset`]).
    pub fn tail_offset(&self, partition: PartitionId) -> Result<u64, ScribeError> {
        let idx = partition_index(&self.name, &self.cat.partitions, partition)?;
        Ok(self.cat.partitions[idx].appended)
    }

    /// Append offset-only traffic (see [`Scribe::append_bytes`]).
    pub fn append_bytes(
        &mut self,
        partition: PartitionId,
        bytes: u64,
        at: SimTime,
    ) -> Result<(), ScribeError> {
        let idx = partition_index(&self.name, &self.cat.partitions, partition)?;
        self.cat.partitions[idx].appended += bytes;
        self.cat.total_appended += bytes;
        self.cat.last_append_at = self.cat.last_append_at.max(at);
        Ok(())
    }
}

/// The one bounds check between a wire-supplied [`PartitionId`] and an
/// index into a category's partition vector. `usize::try_from` (rather
/// than `as usize`) keeps the check exact on 32-bit targets, where a
/// corrupt 64-bit id could otherwise truncate into a valid-looking index.
fn partition_index(
    category: &str,
    partitions: &[Partition],
    partition: PartitionId,
) -> Result<usize, ScribeError> {
    usize::try_from(partition.raw())
        .ok()
        .filter(|&idx| idx < partitions.len())
        .ok_or_else(|| ScribeError::UnknownPartition(category.to_string(), partition))
}

impl turbine_types::Snap for Record {
    fn snap(&self, w: &mut turbine_types::SnapWriter) {
        w.u64(self.offset);
        w.bytes(&self.payload);
    }

    fn unsnap(r: &mut turbine_types::SnapReader<'_>) -> Result<Self, turbine_types::SnapError> {
        Ok(Record {
            offset: r.u64("Record.offset")?,
            payload: r.bytes("Record.payload")?.to_vec(),
        })
    }
}

impl turbine_types::Snap for Partition {
    fn snap(&self, w: &mut turbine_types::SnapWriter) {
        w.u64(self.appended);
        w.u64(self.trimmed);
        w.put(&self.records);
    }

    fn unsnap(r: &mut turbine_types::SnapReader<'_>) -> Result<Self, turbine_types::SnapError> {
        Ok(Partition {
            appended: r.u64("Partition.appended")?,
            trimmed: r.u64("Partition.trimmed")?,
            records: r.get()?,
        })
    }
}

impl turbine_types::Snap for Category {
    fn snap(&self, w: &mut turbine_types::SnapWriter) {
        w.put(&self.partitions);
        w.put(&self.retain_payloads);
        w.u64(self.total_appended);
        w.put(&self.last_append_at);
    }

    fn unsnap(r: &mut turbine_types::SnapReader<'_>) -> Result<Self, turbine_types::SnapError> {
        Ok(Category {
            partitions: r.get()?,
            retain_payloads: r.get()?,
            total_appended: r.u64("Category.total_appended")?,
            last_append_at: r.get()?,
        })
    }
}

impl turbine_types::Snap for Scribe {
    fn snap(&self, w: &mut turbine_types::SnapWriter) {
        w.put(&self.categories);
    }

    fn unsnap(r: &mut turbine_types::SnapReader<'_>) -> Result<Self, turbine_types::SnapError> {
        Ok(Scribe {
            categories: r.get()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: u64) -> PartitionId {
        PartitionId(i)
    }

    #[test]
    fn create_and_append_tracks_offsets() {
        let mut bus = Scribe::new();
        bus.create_category("events", 4).expect("create");
        bus.append_bytes("events", p(0), 100, SimTime::ZERO)
            .expect("append");
        bus.append_bytes("events", p(0), 50, SimTime::ZERO)
            .expect("append");
        bus.append_bytes("events", p(1), 7, SimTime::ZERO)
            .expect("append");
        assert_eq!(bus.tail_offset("events", p(0)).expect("tail"), 150);
        assert_eq!(bus.tail_offset("events", p(1)).expect("tail"), 7);
        assert_eq!(bus.tail_offset("events", p(2)).expect("tail"), 0);
        let stats = bus.stats("events").expect("stats");
        assert_eq!(stats.total_appended, 157);
        assert_eq!(stats.partitions, 4);
    }

    #[test]
    fn duplicate_category_is_rejected() {
        let mut bus = Scribe::new();
        bus.create_category("c", 1).expect("create");
        assert_eq!(
            bus.create_category("c", 1),
            Err(ScribeError::CategoryExists("c".into()))
        );
    }

    #[test]
    fn unknown_targets_error() {
        let mut bus = Scribe::new();
        bus.create_category("c", 2).expect("create");
        assert!(matches!(
            bus.append_bytes("nope", p(0), 1, SimTime::ZERO),
            Err(ScribeError::UnknownCategory(_))
        ));
        assert!(matches!(
            bus.append_bytes("c", p(2), 1, SimTime::ZERO),
            Err(ScribeError::UnknownPartition(_, _))
        ));
    }

    #[test]
    fn salvage_tail_moves_tail_backwards_and_drops_records() {
        let mut bus = Scribe::new();
        bus.create_category_with_payloads("clicks", 1)
            .expect("fresh bus must accept a new category");
        bus.append_record("clicks", PartitionId(0), b"aaaa", SimTime::ZERO)
            .expect("append to an existing partition must succeed");
        bus.append_record("clicks", PartitionId(0), b"bbbb", SimTime::ZERO)
            .expect("append to an existing partition must succeed");
        assert_eq!(
            bus.tail_offset("clicks", PartitionId(0))
                .expect("tail of an existing partition must be readable"),
            8
        );
        // Torn tail: the last record was half-written and dropped.
        assert_eq!(
            bus.salvage_tail("clicks", PartitionId(0), 4)
                .expect("salvage of an existing partition must succeed"),
            4
        );
        assert_eq!(
            bus.tail_offset("clicks", PartitionId(0))
                .expect("tail of an existing partition must be readable"),
            4
        );
        assert_eq!(
            bus.read_records("clicks", PartitionId(0), 0, 10)
                .expect("read below the tail must succeed")
                .len(),
            1
        );
        // A reader checkpointed at 8 now reads beyond the tail.
        assert!(matches!(
            bus.bytes_available("clicks", PartitionId(0), 8),
            Err(ScribeError::OffsetBeyondTail {
                requested: 8,
                tail: 4
            })
        ));
        // Salvage at/above the tail is a no-op.
        assert_eq!(
            bus.salvage_tail("clicks", PartitionId(0), 9)
                .expect("salvage of an existing partition must succeed"),
            0
        );
        assert_eq!(
            bus.tail_offset("clicks", PartitionId(0))
                .expect("tail of an existing partition must be readable"),
            4
        );
    }

    #[test]
    fn bytes_available_is_backlog() {
        let mut bus = Scribe::new();
        bus.create_category("c", 1).expect("create");
        bus.append_bytes("c", p(0), 1000, SimTime::ZERO)
            .expect("append");
        assert_eq!(bus.bytes_available("c", p(0), 0).expect("avail"), 1000);
        assert_eq!(bus.bytes_available("c", p(0), 400).expect("avail"), 600);
        assert_eq!(bus.bytes_available("c", p(0), 1000).expect("avail"), 0);
        assert!(matches!(
            bus.bytes_available("c", p(0), 1001),
            Err(ScribeError::OffsetBeyondTail { .. })
        ));
    }

    #[test]
    fn records_roundtrip_when_retained() {
        let mut bus = Scribe::new();
        bus.create_category_with_payloads("c", 1).expect("create");
        let o1 = bus
            .append_record("c", p(0), b"hello", SimTime::ZERO)
            .expect("append");
        let o2 = bus
            .append_record("c", p(0), b"world!", SimTime::ZERO)
            .expect("append");
        assert_eq!((o1, o2), (0, 5));
        let recs = bus.read_records("c", p(0), 0, 10).expect("read");
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].payload, b"hello");
        // Reading from an offset skips earlier records.
        let recs = bus.read_records("c", p(0), 5, 10).expect("read");
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].payload, b"world!");
        // `max` bounds the read.
        assert_eq!(bus.read_records("c", p(0), 0, 1).expect("read").len(), 1);
    }

    #[test]
    fn fast_path_does_not_retain_payloads() {
        let mut bus = Scribe::new();
        bus.create_category("c", 1).expect("create");
        bus.append_record("c", p(0), b"hello", SimTime::ZERO)
            .expect("append");
        assert!(bus.read_records("c", p(0), 0, 10).expect("read").is_empty());
        // But offsets still advance.
        assert_eq!(bus.tail_offset("c", p(0)).expect("tail"), 5);
    }

    #[test]
    fn trim_drops_old_data_and_clamps_reads() {
        let mut bus = Scribe::new();
        bus.create_category_with_payloads("c", 1).expect("create");
        bus.append_record("c", p(0), b"aaaa", SimTime::ZERO)
            .expect("append");
        bus.append_record("c", p(0), b"bbbb", SimTime::ZERO)
            .expect("append");
        bus.trim("c", p(0), 4).expect("trim");
        // A reader checkpointed at 0 lost the first record: available data
        // is only what remains past the trim point.
        assert_eq!(bus.bytes_available("c", p(0), 0).expect("avail"), 4);
        let recs = bus.read_records("c", p(0), 0, 10).expect("read");
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].payload, b"bbbb");
        // Trimming beyond the tail clamps.
        bus.trim("c", p(0), 1_000_000).expect("trim");
        assert_eq!(bus.bytes_available("c", p(0), 8).expect("avail"), 0);
    }

    #[test]
    fn category_backlog_matches_per_partition_sum() {
        let mut bus = Scribe::new();
        bus.create_category("c", 3).expect("create");
        bus.append_bytes("c", p(0), 1000, SimTime::ZERO)
            .expect("append");
        bus.append_bytes("c", p(1), 500, SimTime::ZERO)
            .expect("append");
        bus.trim("c", p(0), 100).expect("trim");
        let cursors = [(p(0), 50u64), (p(1), 200), (p(2), 0)];
        let expected: u64 = cursors
            .iter()
            .map(|&(part, from)| bus.bytes_available("c", part, from).expect("avail"))
            .sum();
        assert_eq!(bus.category_backlog("c", cursors), Ok(expected));
        // Partitions the category lacks are skipped; unknown categories sum
        // to zero (as when no data was ever written).
        assert_eq!(bus.category_backlog("c", [(p(9), 0)]), Ok(0));
        assert_eq!(bus.category_backlog("nope", [(p(0), 0)]), Ok(0));
        // A beyond-tail cursor aborts with its partition, like the
        // per-stream path's first error.
        assert_eq!(
            bus.category_backlog("c", [(p(1), 501)]),
            Err((
                p(1),
                ScribeError::OffsetBeyondTail {
                    requested: 501,
                    tail: 500
                }
            ))
        );
    }

    #[test]
    fn category_view_mirrors_bus_operations() {
        let mut bus = Scribe::new();
        bus.create_category("c", 2).expect("create");
        let at = SimTime::from_millis(7000);
        {
            let mut view = bus.category_view("c").expect("view");
            assert_eq!(view.partition_count(), 2);
            view.append_bytes(p(0), 123, at).expect("append");
            assert_eq!(view.tail_offset(p(0)), Ok(123));
            assert!(matches!(
                view.append_bytes(p(5), 1, at),
                Err(ScribeError::UnknownPartition(_, _))
            ));
            assert!(view.tail_offset(p(5)).is_err());
        }
        assert_eq!(bus.tail_offset("c", p(0)), Ok(123));
        let stats = bus.stats("c").expect("stats");
        assert_eq!(stats.total_appended, 123);
        assert_eq!(stats.last_append_at, at);
        assert!(bus.category_view("nope").is_err());
    }

    #[test]
    fn last_append_time_is_monotonic() {
        let mut bus = Scribe::new();
        bus.create_category("c", 1).expect("create");
        let later = SimTime::from_millis(5000);
        bus.append_bytes("c", p(0), 1, later).expect("append");
        bus.append_bytes("c", p(0), 1, SimTime::ZERO)
            .expect("append");
        assert_eq!(bus.stats("c").expect("stats").last_append_at, later);
    }
}
