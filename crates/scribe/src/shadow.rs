//! Shadow consumption for warm standbys.
//!
//! A critical job's standby container tails the job's input category
//! alongside the primary so a promotion starts from warm state. The
//! shadow reader is strictly observational: it records how far each
//! partition's tail has advanced but **never** writes the checkpoint
//! store — the primary's checkpoints stay the single source of truth, and
//! the single-writer isolation property (`crates/scribe/src/checkpoint.rs`)
//! is preserved. Any commit attempted through the shadow path is counted
//! as an illegal write and surfaced by the platform's invariant checker.

use std::collections::BTreeMap;
use turbine_types::{JobId, PartitionId};

/// Per-(job, partition) shadow read positions of warm standbys.
#[derive(Debug, Default, Clone)]
pub struct ShadowCursor {
    observed: BTreeMap<(JobId, PartitionId), u64>,
    illegal_commits: u64,
}

impl ShadowCursor {
    /// An empty cursor set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record the tail offset a standby's shadow reader has observed.
    /// Observations are monotone: a stale read never moves the cursor
    /// backwards.
    pub fn observe(&mut self, job: JobId, partition: PartitionId, tail: u64) {
        let slot = self.observed.entry((job, partition)).or_insert(0);
        if tail > *slot {
            *slot = tail;
        }
    }

    /// The furthest offset the shadow reader has seen for a partition;
    /// zero if it never observed one.
    pub fn observed(&self, job: JobId, partition: PartitionId) -> u64 {
        self.observed.get(&(job, partition)).copied().unwrap_or(0)
    }

    /// Sum of observed offsets across a job's partitions — how much input
    /// the standby has already seen (its warmth at promotion time).
    pub fn job_observed_total(&self, job: JobId) -> u64 {
        self.observed
            .range((job, PartitionId(0))..=(job, PartitionId(u64::MAX)))
            .map(|(_, &o)| o)
            .sum()
    }

    /// A commit reached the shadow path. This must never happen — the
    /// standby is read-only until promoted — so the attempt is counted and
    /// rejected rather than applied. The invariant checker asserts the
    /// count stays zero.
    pub fn reject_commit(&mut self, _job: JobId, _partition: PartitionId, _offset: u64) {
        self.illegal_commits += 1;
    }

    /// Commits illegally attempted through the shadow path (invariant:
    /// always zero).
    pub fn illegal_commits(&self) -> u64 {
        self.illegal_commits
    }

    /// Drop every cursor of a job (promotion consumed the warmth, the job
    /// was deleted, or its standby registration was cleared).
    pub fn remove_job(&mut self, job: JobId) {
        self.observed.retain(|&(j, _), _| j != job);
    }

    /// Number of tracked cursors.
    pub fn len(&self) -> usize {
        self.observed.len()
    }

    /// True when no cursors are tracked.
    pub fn is_empty(&self) -> bool {
        self.observed.is_empty()
    }
}

impl turbine_types::Snap for ShadowCursor {
    fn snap(&self, w: &mut turbine_types::SnapWriter) {
        w.put(&self.observed);
        w.u64(self.illegal_commits);
    }

    fn unsnap(r: &mut turbine_types::SnapReader<'_>) -> Result<Self, turbine_types::SnapError> {
        Ok(ShadowCursor {
            observed: r.get()?,
            illegal_commits: r.u64("ShadowCursor.illegal_commits")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const JOB: JobId = JobId(4);

    #[test]
    fn observations_are_monotone_per_partition() {
        let mut shadow = ShadowCursor::new();
        shadow.observe(JOB, PartitionId(0), 100);
        shadow.observe(JOB, PartitionId(0), 40); // stale read
        shadow.observe(JOB, PartitionId(1), 7);
        assert_eq!(shadow.observed(JOB, PartitionId(0)), 100);
        assert_eq!(shadow.observed(JOB, PartitionId(1)), 7);
        assert_eq!(shadow.job_observed_total(JOB), 107);
        assert_eq!(shadow.observed(JobId(9), PartitionId(0)), 0);
    }

    #[test]
    fn commits_are_rejected_and_counted_never_applied() {
        let mut shadow = ShadowCursor::new();
        shadow.observe(JOB, PartitionId(0), 50);
        shadow.reject_commit(JOB, PartitionId(0), 60);
        assert_eq!(shadow.illegal_commits(), 1);
        // The cursor is untouched: shadow state never advances via commits.
        assert_eq!(shadow.observed(JOB, PartitionId(0)), 50);
    }

    #[test]
    fn remove_job_drops_only_that_job() {
        let mut shadow = ShadowCursor::new();
        shadow.observe(JOB, PartitionId(0), 1);
        shadow.observe(JobId(5), PartitionId(0), 2);
        shadow.remove_job(JOB);
        assert_eq!(shadow.observed(JOB, PartitionId(0)), 0);
        assert_eq!(shadow.observed(JobId(5), PartitionId(0)), 2);
        assert_eq!(shadow.len(), 1);
    }
}
