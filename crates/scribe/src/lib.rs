//! Scribe: the persistent message-bus substrate (paper §II, §VI).
//!
//! Facebook's Scribe is a persistent distributed messaging system; data is
//! partitioned into *categories* (cf. Kafka topics), each with a set of
//! partitions. All communication between Turbine jobs goes through Scribe
//! rather than direct network connections, which is what makes tasks
//! independently recoverable: a failed task restores its own state and
//! resumes reading its partitions from its own checkpoint.
//!
//! This implementation models what the control plane observes: per-partition
//! byte offsets (append totals), reader checkpoints, and therefore
//! `total_bytes_lagged` — the numerator of the paper's Eq. 1. Small payloads
//! can also be stored verbatim (`append_record`/`read_records`) so the
//! examples can move real data end-to-end; byte-level accounting is the fast
//! path used by cluster-scale simulations.

pub mod bus;
pub mod checkpoint;
pub mod shadow;

pub use bus::{CategoryStats, Record, Scribe, ScribeError};
pub use checkpoint::CheckpointStore;
pub use shadow::ShadowCursor;
