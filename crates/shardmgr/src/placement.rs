//! The shard placement algorithm (paper §IV-B).
//!
//! Generates a shard → container mapping that (a) satisfies each
//! container's capacity constraint (minus a configurable headroom kept for
//! absorbing spikes), (b) keeps every container's load within a utilization
//! band of the tier average, and (c) minimizes churn by keeping shards
//! where they already run whenever that does not violate (a) or (b).
//!
//! The algorithm is greedy first-fit-decreasing over a lazy min-heap of
//! container utilizations: O((S + C) log C) for S shards and C containers.
//! The paper reports placing 100 K shards onto thousands of containers in
//! under two seconds; the `placement` bench in `turbine-bench` reproduces
//! that bound (comfortably, on commodity hardware).

use crate::movement::ShardMovement;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use turbine_types::{ContainerId, Resources, ShardId};

/// Tunables of the placement algorithm.
#[derive(Debug, Clone, Copy)]
pub struct PlacementConfig {
    /// Half-width of the utilization band around the tier mean; a
    /// container is "hot" when its utilization exceeds `mean + band`.
    /// The paper's example is ±10 %.
    pub band: f64,
    /// Fraction of each container's capacity reserved as headroom and
    /// never packed (the paper keeps headroom to tolerate simultaneous
    /// input spikes from many tasks).
    pub headroom: f64,
}

impl Default for PlacementConfig {
    fn default() -> Self {
        PlacementConfig {
            band: 0.10,
            headroom: 0.15,
        }
    }
}

/// Inputs to one placement round.
#[derive(Debug, Clone, Copy)]
pub struct PlacementInput<'a> {
    /// Every shard with its latest aggregated load.
    pub shards: &'a [(ShardId, Resources)],
    /// Every *alive* container with its capacity.
    pub containers: &'a [(ContainerId, Resources)],
    /// The current assignment (shards on dead containers should already be
    /// absent or pointing at containers not listed above).
    pub current: &'a HashMap<ShardId, ContainerId>,
}

/// Output of one placement round.
#[derive(Debug, Clone)]
pub struct PlacementResult {
    /// The complete new assignment.
    pub assignment: HashMap<ShardId, ContainerId>,
    /// Movements relative to `current` (unassigned shards appear with
    /// `from: None`).
    pub moves: Vec<ShardMovement>,
    /// Quality statistics of the produced assignment.
    pub stats: PlacementStats,
}

/// Quality statistics of a placement.
#[derive(Debug, Clone, Copy, Default)]
pub struct PlacementStats {
    /// Mean container utilization (dominant dimension, after headroom).
    pub mean_util: f64,
    /// Maximum container utilization.
    pub max_util: f64,
    /// Minimum container utilization.
    pub min_util: f64,
    /// Number of shards that changed container.
    pub moved: usize,
    /// Shards placed on a container despite exceeding its effective
    /// capacity (the cluster is over-committed; Capacity Manager territory).
    pub overflowed: usize,
}

/// Total order on f64 utilizations. Uses [`f64::total_cmp`] so a NaN
/// (e.g. a 0/0 from a zero-capacity container, or a corrupt load report)
/// sorts deterministically at the top instead of panicking the Shard
/// Manager round — a NaN-utilization container reads as "worst possible
/// target", which is exactly the conservative choice.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Util(f64);
impl Eq for Util {}
impl PartialOrd for Util {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Util {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// A container's utilization for placement decisions. Zero-capacity
/// containers (a host that reported no usable resources — draining,
/// misconfigured, or freshly registered with empty capacity) are treated
/// as *full*: `+inf` keeps them at the bottom of every "least utilized"
/// ordering so they are never chosen as placement targets, and any NaN
/// from degenerate division is normalized to the same "full" sentinel.
fn placement_util(load: &Resources, cap: &Resources) -> f64 {
    if cap.is_zero() {
        return f64::INFINITY;
    }
    let util = load.dominant_utilization(cap);
    if util.is_nan() {
        f64::INFINITY
    } else {
        util
    }
}

/// Reusable working memory for [`compute_placement_with`]. One placement
/// round over a 10k-container tier otherwise churns through ~10 fresh
/// heap allocations (capacity tables, per-container shard lists, the
/// first-fit heap); a caller that places every round keeps one scratch
/// alive and the buffers' capacities stabilize after the first round.
/// The buffers carry no state between rounds — every pass below fully
/// rewrites what it reads — so reuse cannot change the result.
#[derive(Debug, Default)]
pub struct PlacementScratch {
    effective_cap: Vec<Resources>,
    usable: Vec<bool>,
    container_index: HashMap<ContainerId, usize>,
    loads: Vec<Resources>,
    pool: Vec<(ShardId, Resources)>,
    by_container: Vec<Vec<(ShardId, Resources)>>,
    shard_counts: Vec<usize>,
    heap: BinaryHeap<Reverse<(Util, usize, usize)>>,
    skipped: Vec<Reverse<(Util, usize, usize)>>,
    utils: Vec<f64>,
}

/// Compute a new placement with one-shot scratch buffers. See module docs
/// for the algorithm; hot callers should hold a [`PlacementScratch`] and
/// use [`compute_placement_with`].
pub fn compute_placement(input: PlacementInput<'_>, config: PlacementConfig) -> PlacementResult {
    compute_placement_with(&mut PlacementScratch::default(), input, config)
}

/// Compute a new placement, reusing `scratch` across the three passes and
/// across rounds. Identical to [`compute_placement`] in every output.
pub fn compute_placement_with(
    scratch: &mut PlacementScratch,
    input: PlacementInput<'_>,
    config: PlacementConfig,
) -> PlacementResult {
    assert!(
        (0.0..1.0).contains(&config.headroom),
        "headroom must be a fraction below 1"
    );
    assert!(config.band > 0.0, "band must be positive");
    if input.containers.is_empty() {
        return PlacementResult {
            assignment: HashMap::new(),
            moves: Vec::new(),
            stats: PlacementStats::default(),
        };
    }

    let n_containers = input.containers.len();
    scratch.effective_cap.clear();
    scratch.effective_cap.extend(
        input
            .containers
            .iter()
            .map(|(_, cap)| cap.scale(1.0 - config.headroom)),
    );
    let effective_cap = &scratch.effective_cap;
    // A container whose effective capacity is zero in every dimension
    // cannot meaningfully host shards: `fits_within` would still accept
    // zero-load shards (0 <= 0) and `dominant_utilization` reads 0.0
    // (every dimension is skipped), which makes the container look
    // *empty* rather than full. Mark it unusable: no stickiness, never a
    // placement or eviction target, excluded from tier statistics.
    scratch.usable.clear();
    scratch
        .usable
        .extend(effective_cap.iter().map(|c| !c.is_zero()));
    let usable = &scratch.usable;
    scratch.container_index.clear();
    scratch.container_index.extend(
        input
            .containers
            .iter()
            .enumerate()
            .map(|(i, (id, _))| (*id, i)),
    );
    let container_index = &scratch.container_index;

    scratch.loads.clear();
    scratch.loads.resize(n_containers, Resources::ZERO);
    let loads = &mut scratch.loads;
    let mut assignment: HashMap<ShardId, ContainerId> = HashMap::with_capacity(input.shards.len());

    // Pass 1 — stickiness: keep each shard on its current container when
    // that container is still alive and the shard still fits.
    scratch.pool.clear();
    let pool = &mut scratch.pool;
    for &(shard, load) in input.shards {
        match input
            .current
            .get(&shard)
            .and_then(|c| container_index.get(c))
        {
            Some(&idx) if usable[idx] && (loads[idx] + load).fits_within(&effective_cap[idx]) => {
                loads[idx] += load;
                assignment.insert(shard, input.containers[idx].0);
            }
            _ => pool.push((shard, load)),
        }
    }

    // Pass 2 — band enforcement: evict from hot containers (largest shards
    // first: fastest load reduction with fewest movements) until every
    // container is within `mean + band`.
    let mean_util = mean_utilization(loads, effective_cap, usable);
    let hot_threshold = mean_util + config.band;
    for per_container in &mut scratch.by_container {
        per_container.clear();
    }
    scratch.by_container.resize_with(n_containers, Vec::new);
    let by_container = &mut scratch.by_container;
    for (&shard, container) in &assignment {
        let idx = container_index[container];
        let load = lookup_load(input.shards, shard);
        by_container[idx].push((shard, load));
    }
    for idx in 0..n_containers {
        let cap = &effective_cap[idx];
        if loads[idx].dominant_utilization(cap) <= hot_threshold {
            continue;
        }
        // Largest first; deterministic tie-break on shard id. `total_cmp`
        // keeps the sort total even if a corrupt load report smuggles a
        // NaN in: NaN-sized shards sort first (drained first), which is
        // the safe direction for a load we cannot trust.
        by_container[idx].sort_by(|a, b| {
            let ua = a.1.dominant_utilization(cap);
            let ub = b.1.dominant_utilization(cap);
            ub.total_cmp(&ua).then(a.0.cmp(&b.0))
        });
        // Drain largest-first (sorted descending, so from the front) —
        // but only while some other container offers a *strictly better*
        // home for the shard. Without this check, uniformly hot tiers
        // would shuffle shards between equally-loaded containers forever
        // (placement must be idempotent on its own output).
        let mut drain_from = 0;
        while loads[idx].dominant_utilization(cap) > hot_threshold
            && drain_from < by_container[idx].len()
        {
            let (shard, load) = by_container[idx][drain_from];
            drain_from += 1;
            let source_util = loads[idx].dominant_utilization(cap);
            let improvable = (0..n_containers).any(|other| {
                other != idx
                    && usable[other]
                    && (loads[other] + load).fits_within(&effective_cap[other])
                    && (loads[other] + load).dominant_utilization(&effective_cap[other])
                        < source_util
            });
            if !improvable {
                continue;
            }
            loads[idx] -= load;
            assignment.remove(&shard);
            pool.push((shard, load));
        }
    }

    // Pass 3 — first-fit-decreasing: place pooled shards (new, evicted,
    // displaced) on the least-utilized container that fits; fall back to
    // the least-utilized container outright if none fits (overflow).
    pool.sort_by(|a, b| {
        let ua = dominant_load(&a.1);
        let ub = dominant_load(&b.1);
        ub.total_cmp(&ua).then(a.0.cmp(&b.0))
    });
    // Lazy min-heap of (utilization, container idx); stale entries are
    // re-pushed with fresh values on pop.
    // Heap key: (utilization, shard count, container idx). The shard
    // count tie-break matters when loads are uniform or still unreported
    // (all-zero): without it, zero-load shards would all pile onto one
    // container because placing them never changes its utilization.
    scratch.shard_counts.clear();
    scratch.shard_counts.resize(n_containers, 0);
    let shard_counts = &mut scratch.shard_counts;
    for container in assignment.values() {
        shard_counts[container_index[container]] += 1;
    }
    // Unusable (zero-capacity) containers never enter the heap, so they
    // are never first-fit targets; they can still absorb overflow via the
    // fallback below when the tier has no usable container at all.
    scratch.heap.clear();
    let heap = &mut scratch.heap;
    heap.extend((0..n_containers).filter(|&idx| usable[idx]).map(|idx| {
        Reverse((
            Util(placement_util(&loads[idx], &effective_cap[idx])),
            shard_counts[idx],
            idx,
        ))
    }));
    let mut overflowed = 0usize;
    let skipped = &mut scratch.skipped;
    for &(shard, load) in pool.iter() {
        skipped.clear();
        let mut placed_at: Option<usize> = None;
        while let Some(Reverse((util, count, idx))) = heap.pop() {
            let fresh = Util(placement_util(&loads[idx], &effective_cap[idx]));
            if fresh != util || count != shard_counts[idx] {
                heap.push(Reverse((fresh, shard_counts[idx], idx)));
                continue;
            }
            if (loads[idx] + load).fits_within(&effective_cap[idx]) {
                placed_at = Some(idx);
                break;
            }
            skipped.push(Reverse((util, count, idx)));
            // Bound the scan: after probing a quarter of the tier, accept
            // overflow on the least utilized container seen.
            if skipped.len() > (n_containers / 4).max(8) {
                break;
            }
        }
        let idx = placed_at.unwrap_or_else(|| {
            overflowed += 1;
            skipped
                .first()
                .map(|Reverse((_, _, idx))| *idx)
                .unwrap_or(0)
        });
        loads[idx] += load;
        shard_counts[idx] += 1;
        assignment.insert(shard, input.containers[idx].0);
        if usable[idx] {
            heap.push(Reverse((
                Util(placement_util(&loads[idx], &effective_cap[idx])),
                shard_counts[idx],
                idx,
            )));
        }
        for &entry in skipped.iter() {
            heap.push(entry);
        }
    }

    // Movements relative to the previous assignment.
    let mut moves: Vec<ShardMovement> = Vec::new();
    for &(shard, _) in input.shards {
        let to = assignment[&shard];
        let from = input.current.get(&shard).copied();
        if from != Some(to) {
            moves.push(ShardMovement { shard, from, to });
        }
    }
    moves.sort_by_key(|m| m.shard);

    // Statistics cover usable containers only: an unusable container's
    // `+inf` sentinel would otherwise poison the mean and max.
    scratch.utils.clear();
    scratch.utils.extend(
        (0..n_containers)
            .filter(|&idx| usable[idx])
            .map(|idx| placement_util(&loads[idx], &effective_cap[idx])),
    );
    let utils = &scratch.utils;
    let stats = PlacementStats {
        mean_util: if utils.is_empty() {
            0.0
        } else {
            utils.iter().sum::<f64>() / utils.len() as f64
        },
        max_util: utils.iter().cloned().fold(0.0, f64::max),
        min_util: utils.iter().cloned().fold(f64::INFINITY, f64::min),
        moved: moves.iter().filter(|m| m.from.is_some()).count(),
        overflowed,
    };
    PlacementResult {
        assignment,
        moves,
        stats,
    }
}

fn mean_utilization(loads: &[Resources], caps: &[Resources], usable: &[bool]) -> f64 {
    let mut sum = 0.0;
    let mut n = 0usize;
    for (idx, (l, c)) in loads.iter().zip(caps).enumerate() {
        if usable[idx] {
            sum += placement_util(l, c);
            n += 1;
        }
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

/// Scalar magnitude used to order shards by size (sum of normalized-ish
/// dimensions; exact scale does not matter for ordering quality).
fn dominant_load(load: &Resources) -> f64 {
    load.cpu + load.memory_mb / 1024.0 + load.disk_mb / 10240.0 + load.network_mbps / 100.0
}

fn lookup_load(shards: &[(ShardId, Resources)], shard: ShardId) -> Resources {
    // Shards are supplied sorted by id by the Shard Manager.
    match shards.binary_search_by_key(&shard, |&(id, _)| id) {
        Ok(i) => shards[i].1,
        Err(_) => Resources::ZERO,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shard(i: u64, cpu: f64) -> (ShardId, Resources) {
        (ShardId(i), Resources::cpu_mem(cpu, cpu * 512.0))
    }

    fn containers(n: u64, cpu: f64) -> Vec<(ContainerId, Resources)> {
        (0..n)
            .map(|i| (ContainerId(i), Resources::cpu_mem(cpu, cpu * 1024.0)))
            .collect()
    }

    fn cfg() -> PlacementConfig {
        PlacementConfig::default()
    }

    #[test]
    fn every_shard_gets_assigned() {
        let shards: Vec<_> = (0..100).map(|i| shard(i, 0.5)).collect();
        let conts = containers(10, 16.0);
        let result = compute_placement(
            PlacementInput {
                shards: &shards,
                containers: &conts,
                current: &HashMap::new(),
            },
            cfg(),
        );
        assert_eq!(result.assignment.len(), 100);
        assert_eq!(result.moves.len(), 100);
        assert!(result.moves.iter().all(|m| m.from.is_none()));
        assert_eq!(result.stats.overflowed, 0);
    }

    #[test]
    fn balanced_load_stays_within_band() {
        let shards: Vec<_> = (0..1000)
            .map(|i| shard(i, 0.2 + (i % 7) as f64 * 0.1))
            .collect();
        let conts = containers(20, 32.0);
        let result = compute_placement(
            PlacementInput {
                shards: &shards,
                containers: &conts,
                current: &HashMap::new(),
            },
            cfg(),
        );
        let spread = result.stats.max_util - result.stats.min_util;
        assert!(
            spread <= 2.0 * cfg().band + 0.05,
            "utilization spread {spread} exceeds band (stats: {:?})",
            result.stats
        );
    }

    #[test]
    fn capacity_constraint_is_respected_when_feasible() {
        let shards: Vec<_> = (0..40).map(|i| shard(i, 1.0)).collect();
        let conts = containers(10, 8.0); // effective 6.8 cpu per container
        let result = compute_placement(
            PlacementInput {
                shards: &shards,
                containers: &conts,
                current: &HashMap::new(),
            },
            cfg(),
        );
        assert_eq!(result.stats.overflowed, 0);
        // Verify per-container totals against effective capacity.
        let mut totals: HashMap<ContainerId, f64> = HashMap::new();
        for (&s, &c) in &result.assignment {
            *totals.entry(c).or_default() += shards[s.raw() as usize].1.cpu;
        }
        for (_, total) in totals {
            assert!(total <= 8.0 * (1.0 - cfg().headroom) + 1e-9);
        }
    }

    #[test]
    fn sticky_shards_do_not_move_when_balanced() {
        let shards: Vec<_> = (0..100).map(|i| shard(i, 0.5)).collect();
        let conts = containers(10, 16.0);
        let first = compute_placement(
            PlacementInput {
                shards: &shards,
                containers: &conts,
                current: &HashMap::new(),
            },
            cfg(),
        );
        // Re-running with identical loads must be a no-op.
        let second = compute_placement(
            PlacementInput {
                shards: &shards,
                containers: &conts,
                current: &first.assignment,
            },
            cfg(),
        );
        assert_eq!(second.stats.moved, 0, "stable input must not churn");
        assert!(second.moves.is_empty());
    }

    #[test]
    fn dead_container_shards_are_failed_over() {
        let shards: Vec<_> = (0..20).map(|i| shard(i, 0.5)).collect();
        let conts = containers(4, 16.0);
        let first = compute_placement(
            PlacementInput {
                shards: &shards,
                containers: &conts,
                current: &HashMap::new(),
            },
            cfg(),
        );
        // Container 0 dies: pass only the survivors.
        let survivors: Vec<_> = conts[1..].to_vec();
        let second = compute_placement(
            PlacementInput {
                shards: &shards,
                containers: &survivors,
                current: &first.assignment,
            },
            cfg(),
        );
        assert_eq!(second.assignment.len(), 20);
        assert!(second.assignment.values().all(|&c| c != ContainerId(0)));
        // Shards that were on survivors stay put.
        for (&s, &c) in &first.assignment {
            if c != ContainerId(0) {
                assert_eq!(second.assignment[&s], c, "{s} should be sticky");
            }
        }
    }

    #[test]
    fn hot_container_is_drained_to_the_band() {
        // Start from a deliberately imbalanced current assignment: all
        // shards on container 0.
        let shards: Vec<_> = (0..64).map(|i| shard(i, 0.25)).collect();
        let conts = containers(4, 32.0);
        let mut current = HashMap::new();
        for &(s, _) in &shards {
            current.insert(s, ContainerId(0));
        }
        let result = compute_placement(
            PlacementInput {
                shards: &shards,
                containers: &conts,
                current: &current,
            },
            cfg(),
        );
        let spread = result.stats.max_util - result.stats.min_util;
        assert!(spread <= 2.0 * cfg().band + 0.05, "spread {spread}");
        assert!(result.stats.moved > 0);
    }

    #[test]
    fn overcommitted_tier_overflows_rather_than_dropping() {
        let shards: Vec<_> = (0..100).map(|i| shard(i, 1.0)).collect();
        let conts = containers(2, 8.0); // far too small
        let result = compute_placement(
            PlacementInput {
                shards: &shards,
                containers: &conts,
                current: &HashMap::new(),
            },
            cfg(),
        );
        assert_eq!(result.assignment.len(), 100, "no shard loss");
        assert!(result.stats.overflowed > 0);
    }

    #[test]
    fn empty_inputs_are_fine() {
        let result = compute_placement(
            PlacementInput {
                shards: &[],
                containers: &[],
                current: &HashMap::new(),
            },
            cfg(),
        );
        assert!(result.assignment.is_empty());
        let conts = containers(3, 8.0);
        let result = compute_placement(
            PlacementInput {
                shards: &[],
                containers: &conts,
                current: &HashMap::new(),
            },
            cfg(),
        );
        assert!(result.moves.is_empty());
    }

    #[test]
    fn zero_capacity_container_gets_no_shards() {
        let shards: Vec<_> = (0..50).map(|i| shard(i, 0.5)).collect();
        let mut conts = containers(4, 16.0);
        conts.push((ContainerId(4), Resources::ZERO));
        let result = compute_placement(
            PlacementInput {
                shards: &shards,
                containers: &conts,
                current: &HashMap::new(),
            },
            cfg(),
        );
        assert_eq!(result.assignment.len(), 50, "no shard loss");
        assert!(
            result.assignment.values().all(|&c| c != ContainerId(4)),
            "zero-capacity container must not be a placement target"
        );
        assert_eq!(result.stats.overflowed, 0);
        assert!(result.stats.mean_util.is_finite());
        assert!(result.stats.max_util.is_finite());
    }

    #[test]
    fn shards_stuck_on_zero_capacity_container_are_evacuated() {
        // Current assignment points at a container that now reports zero
        // capacity (e.g. draining): stickiness must not keep shards there.
        let shards: Vec<_> = (0..8).map(|i| shard(i, 0.0)).collect();
        let mut conts = containers(2, 16.0);
        conts.push((ContainerId(2), Resources::ZERO));
        let mut current = HashMap::new();
        for &(s, _) in &shards {
            current.insert(s, ContainerId(2));
        }
        let result = compute_placement(
            PlacementInput {
                shards: &shards,
                containers: &conts,
                current: &current,
            },
            cfg(),
        );
        assert!(
            result.assignment.values().all(|&c| c != ContainerId(2)),
            "zero-load shards must not stick to a zero-capacity container"
        );
    }

    #[test]
    fn all_zero_capacity_tier_overflows_without_panicking() {
        let shards: Vec<_> = (0..10).map(|i| shard(i, 1.0)).collect();
        let conts: Vec<_> = (0..3).map(|i| (ContainerId(i), Resources::ZERO)).collect();
        let result = compute_placement(
            PlacementInput {
                shards: &shards,
                containers: &conts,
                current: &HashMap::new(),
            },
            cfg(),
        );
        assert_eq!(result.assignment.len(), 10, "no shard loss even here");
        assert_eq!(result.stats.overflowed, 10);
        assert!(result.stats.mean_util.is_finite());
    }

    #[test]
    fn mixed_tiny_and_zero_capacities_do_not_panic() {
        let shards: Vec<_> = (0..30).map(|i| shard(i, 0.25)).collect();
        let conts = vec![
            (ContainerId(0), Resources::ZERO),
            (ContainerId(1), Resources::cpu_mem(0.001, 1.0)),
            (ContainerId(2), Resources::cpu_mem(16.0, 16384.0)),
            (ContainerId(3), Resources::cpu_mem(16.0, 16384.0)),
        ];
        let result = compute_placement(
            PlacementInput {
                shards: &shards,
                containers: &conts,
                current: &HashMap::new(),
            },
            cfg(),
        );
        assert_eq!(result.assignment.len(), 30);
        assert!(result.assignment.values().all(|&c| c != ContainerId(0)));
        assert!(result.stats.mean_util.is_finite());
    }

    #[test]
    fn nan_shard_load_does_not_panic_placement() {
        // A corrupt load report: NaN in one dimension. The placement must
        // stay total-ordered and terminate.
        let mut shards: Vec<_> = (0..10).map(|i| shard(i, 0.5)).collect();
        shards[3].1.cpu = f64::NAN;
        let conts = containers(3, 16.0);
        let result = compute_placement(
            PlacementInput {
                shards: &shards,
                containers: &conts,
                current: &HashMap::new(),
            },
            cfg(),
        );
        assert_eq!(result.assignment.len(), 10);
    }

    #[test]
    fn scratch_reuse_is_equivalent_to_fresh_buffers() {
        // One long-lived scratch driven through rounds of very different
        // fleet shapes (growing, shrinking, imbalanced, overcommitted)
        // must reproduce the fresh-buffer result exactly every round.
        let mut scratch = PlacementScratch::default();
        let mut current: HashMap<ShardId, ContainerId> = HashMap::new();
        for (n_shards, n_conts, cpu) in [
            (500u64, 16u64, 24.0),
            (300, 8, 24.0),
            (700, 24, 24.0),
            (700, 2, 4.0),
            (100, 24, 24.0),
        ] {
            let shards: Vec<_> = (0..n_shards)
                .map(|i| shard(i, 0.1 + (i % 13) as f64 * 0.07))
                .collect();
            let conts = containers(n_conts, cpu);
            let input = PlacementInput {
                shards: &shards,
                containers: &conts,
                current: &current,
            };
            let reused = compute_placement_with(&mut scratch, input, cfg());
            let fresh = compute_placement(input, cfg());
            assert_eq!(reused.assignment, fresh.assignment);
            assert_eq!(reused.moves, fresh.moves);
            assert_eq!(reused.stats.moved, fresh.stats.moved);
            assert_eq!(reused.stats.overflowed, fresh.stats.overflowed);
            assert_eq!(reused.stats.mean_util, fresh.stats.mean_util);
            current = reused.assignment;
        }
    }

    #[test]
    fn placement_is_deterministic() {
        let shards: Vec<_> = (0..500)
            .map(|i| shard(i, 0.1 + (i % 13) as f64 * 0.07))
            .collect();
        let conts = containers(16, 24.0);
        let a = compute_placement(
            PlacementInput {
                shards: &shards,
                containers: &conts,
                current: &HashMap::new(),
            },
            cfg(),
        );
        let b = compute_placement(
            PlacementInput {
                shards: &shards,
                containers: &conts,
                current: &HashMap::new(),
            },
            cfg(),
        );
        assert_eq!(a.assignment, b.assignment);
    }
}
