//! Shard movement descriptions.

use std::fmt;
use turbine_types::{ContainerId, ShardId};

/// One shard relocation decided by the Shard Manager. Executing it means
/// sending `DROP_SHARD` to the Task Manager on `from` (when present),
/// waiting for success, then `ADD_SHARD` to the Task Manager on `to`
/// (paper §IV-A2) — in that order, so the shard never runs twice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardMovement {
    /// The shard being moved.
    pub shard: ShardId,
    /// Source container; `None` for a first assignment or a fail-over from
    /// a dead container (nothing to drop).
    pub from: Option<ContainerId>,
    /// Destination container.
    pub to: ContainerId,
}

impl fmt::Display for ShardMovement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.from {
            Some(from) => write!(f, "{} : {} -> {}", self.shard, from, self.to),
            None => write!(f, "{} : (unassigned) -> {}", self.shard, self.to),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_both_shapes() {
        let m = ShardMovement {
            shard: ShardId(1),
            from: Some(ContainerId(2)),
            to: ContainerId(3),
        };
        assert_eq!(m.to_string(), "shard-1 : container-2 -> container-3");
        let first = ShardMovement {
            shard: ShardId(1),
            from: None,
            to: ContainerId(3),
        };
        assert_eq!(first.to_string(), "shard-1 : (unassigned) -> container-3");
    }
}
