//! The Shard Manager service: membership, heartbeats, fail-over, and
//! rebalance rounds (paper §IV-A2, §IV-B, §IV-C).

use crate::movement::ShardMovement;
use crate::placement::{
    compute_placement_with, PlacementConfig, PlacementInput, PlacementResult, PlacementScratch,
};
use std::collections::{BTreeMap, HashMap};
use turbine_types::{ContainerId, Duration, JobId, Resources, ShardId, SimTime};

/// Shard Manager tunables, defaulting to the paper's production values.
#[derive(Debug, Clone, Copy)]
pub struct ShardManagerConfig {
    /// Missing heartbeats for this long ⇒ the container is declared dead
    /// and its shards fail over (paper default: 60 s).
    pub failover_interval: Duration,
    /// Missing heartbeats for this long ⇒ a critical job's primary is
    /// *suspect* and its warm standby is promoted, well before the full
    /// fail-over interval declares the container dead. Two missed beats at
    /// the default 10 s heartbeat cadence. Must not exceed
    /// `failover_interval` (the standard path would win the race).
    pub standby_grace: Duration,
    /// Placement tunables.
    pub placement: PlacementConfig,
}

impl Default for ShardManagerConfig {
    fn default() -> Self {
        ShardManagerConfig {
            failover_interval: Duration::from_secs(60),
            standby_grace: Duration::from_secs(20),
            placement: PlacementConfig::default(),
        }
    }
}

/// Liveness of a registered container, as the Shard Manager sees it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ContainerStatus {
    /// Heart-beating normally.
    Alive,
    /// Declared dead after a full fail-over interval without heartbeats.
    Dead,
}

#[derive(Debug, Clone)]
struct ContainerEntry {
    capacity: Resources,
    last_heartbeat: SimTime,
    status: ContainerStatus,
}

/// The Shard Manager.
#[derive(Debug)]
pub struct ShardManager {
    config: ShardManagerConfig,
    /// Latest aggregated load per shard (reported every ~10 min by the
    /// Task Managers' load aggregator threads).
    shard_loads: BTreeMap<ShardId, Resources>,
    containers: BTreeMap<ContainerId, ContainerEntry>,
    assignment: HashMap<ShardId, ContainerId>,
    /// Warm-standby container per critical job. The standby shadow-
    /// consumes the job's input but owns no shards; promotion hands it the
    /// job's shards through the fast path.
    standbys: BTreeMap<JobId, ContainerId>,
    /// Placement working memory, reused across rounds (the per-round
    /// allocations show up at 10k hosts).
    scratch: PlacementScratch,
    /// Reused snapshot buffers for the placement inputs.
    shard_input: Vec<(ShardId, Resources)>,
    container_input: Vec<(ContainerId, Resources)>,
}

impl ShardManager {
    /// A manager with no shards or containers yet.
    pub fn new(config: ShardManagerConfig) -> Self {
        ShardManager {
            config,
            shard_loads: BTreeMap::new(),
            containers: BTreeMap::new(),
            assignment: HashMap::new(),
            standbys: BTreeMap::new(),
            scratch: PlacementScratch::default(),
            shard_input: Vec::new(),
            container_input: Vec::new(),
        }
    }

    /// The configuration in effect.
    pub fn config(&self) -> &ShardManagerConfig {
        &self.config
    }

    /// Grow (or define) the shard space to exactly `count` shards with ids
    /// `0..count`. Shrinking is not supported: tiers only ever grow their
    /// shard space (the paper packs more tasks per shard instead).
    pub fn ensure_shards(&mut self, count: u64) {
        for i in 0..count {
            self.shard_loads
                .entry(ShardId(i))
                .or_insert(Resources::ZERO);
        }
    }

    /// Number of shards in the tier.
    pub fn shard_count(&self) -> usize {
        self.shard_loads.len()
    }

    /// Register a container (it begins heart-beating immediately).
    pub fn register_container(&mut self, id: ContainerId, capacity: Resources, now: SimTime) {
        self.containers.insert(
            id,
            ContainerEntry {
                capacity,
                last_heartbeat: now,
                status: ContainerStatus::Alive,
            },
        );
    }

    /// Remove a container entirely (host decommission). Its shards remain
    /// in the assignment until the next fail-over check or rebalance.
    pub fn unregister_container(&mut self, id: ContainerId) {
        self.containers.remove(&id);
    }

    /// Record a heartbeat. A container that was declared dead and comes
    /// back is treated as a newly added empty container (paper §IV-C): it
    /// is alive again but owns no shards until a rebalance hands it some.
    /// Returns `true` when the beat revived a dead container — the caller
    /// must surface the revival (trace event, invariant check) rather than
    /// let stale ownership resurrect silently.
    pub fn heartbeat(&mut self, id: ContainerId, now: SimTime) -> bool {
        if let Some(entry) = self.containers.get_mut(&id) {
            let revived = entry.status == ContainerStatus::Dead;
            entry.last_heartbeat = now;
            entry.status = ContainerStatus::Alive;
            revived
        } else {
            false
        }
    }

    /// True when an alive container has missed heartbeats for at least the
    /// standby grace period: not yet dead, but suspect enough that a
    /// critical job's warm standby takes over. Covers both a severed
    /// connection and a dead host (heartbeats stop either way).
    pub fn is_suspect(&self, id: ContainerId, now: SimTime) -> bool {
        self.containers.get(&id).is_some_and(|e| {
            e.status == ContainerStatus::Alive
                && now.since(e.last_heartbeat) >= self.config.standby_grace
        })
    }

    /// Liveness of a container, if registered.
    pub fn status(&self, id: ContainerId) -> Option<ContainerStatus> {
        self.containers.get(&id).map(|e| e.status)
    }

    /// Update the aggregated load of one shard.
    pub fn report_load(&mut self, shard: ShardId, load: Resources) {
        self.shard_loads.insert(shard, load);
    }

    /// Current assignment.
    pub fn assignment(&self) -> &HashMap<ShardId, ContainerId> {
        &self.assignment
    }

    /// Container currently owning `shard`.
    pub fn container_of(&self, shard: ShardId) -> Option<ContainerId> {
        self.assignment.get(&shard).copied()
    }

    /// Shards currently owned by `container`, sorted.
    pub fn shards_of(&self, container: ContainerId) -> Vec<ShardId> {
        let mut shards: Vec<ShardId> = self
            .assignment
            .iter()
            .filter(|&(_, &c)| c == container)
            .map(|(&s, _)| s)
            .collect();
        shards.sort_unstable();
        shards
    }

    /// Alive containers, sorted by id.
    pub fn alive_containers(&self) -> Vec<ContainerId> {
        self.containers
            .iter()
            .filter(|(_, e)| e.status == ContainerStatus::Alive)
            .map(|(&id, _)| id)
            .collect()
    }

    /// Designate `container` as the warm standby of a critical `job`.
    /// The standby owns no shards; it shadow-consumes the job's input so a
    /// promotion starts from warm state.
    pub fn set_standby(&mut self, job: JobId, container: ContainerId) {
        self.standbys.insert(job, container);
    }

    /// The registered standby container of a job, if any.
    pub fn standby_of(&self, job: JobId) -> Option<ContainerId> {
        self.standbys.get(&job).copied()
    }

    /// Drop a job's standby registration (job deleted, standby unhealthy,
    /// or the standby's host now runs a primary task of the job).
    pub fn clear_standby(&mut self, job: JobId) -> Option<ContainerId> {
        self.standbys.remove(&job)
    }

    /// All standby registrations, in job order.
    pub fn standbys(&self) -> impl Iterator<Item = (JobId, ContainerId)> + '_ {
        self.standbys.iter().map(|(&j, &c)| (j, c))
    }

    /// Fast-path promotion: hand every one of `shards` to the job's
    /// standby, consuming the registration. Returns the promoted container
    /// and the movements to execute (sources are the current owners, so
    /// the DROP-before-ADD protocol still revokes stale ownership), or
    /// `None` when the job has no standby or the standby is not alive —
    /// the caller then degrades to the standard fail-over path.
    pub fn promote_standby(
        &mut self,
        job: JobId,
        shards: &[ShardId],
    ) -> Option<(ContainerId, Vec<ShardMovement>)> {
        let standby = self.standby_of(job)?;
        if self.status(standby) != Some(ContainerStatus::Alive) {
            self.standbys.remove(&job);
            return None;
        }
        self.standbys.remove(&job);
        let mut moves = Vec::new();
        for &shard in shards {
            if !self.shard_loads.contains_key(&shard) {
                continue;
            }
            let from = self.assignment.get(&shard).copied();
            if from == Some(standby) {
                continue;
            }
            self.assignment.insert(shard, standby);
            moves.push(ShardMovement {
                shard,
                from,
                to: standby,
            });
        }
        Some((standby, moves))
    }

    /// Declare dead every container whose heartbeat is older than the
    /// fail-over interval, and fail its shards over to survivors. Returns
    /// the movements to execute. Moves of orphaned shards carry
    /// `from: None` (there is nothing to drop on a dead container), but
    /// the re-placement may also rebalance shards *between survivors* —
    /// those moves keep their live source so the executor revokes
    /// ownership before granting it. Does nothing (and returns no moves)
    /// when no container newly died.
    pub fn check_failover(&mut self, now: SimTime) -> Vec<ShardMovement> {
        let mut newly_dead = false;
        for entry in self.containers.values_mut() {
            if entry.status == ContainerStatus::Alive
                && now.since(entry.last_heartbeat) >= self.config.failover_interval
            {
                entry.status = ContainerStatus::Dead;
                newly_dead = true;
            }
        }
        if !newly_dead {
            return Vec::new();
        }
        // Strip assignments pointing at dead containers, then re-place.
        // Placement derives `from` from the stripped assignment, so a dead
        // container's shards come back with `from: None` while survivor
        // rebalancing moves keep their (live) source.
        let dead: Vec<ContainerId> = self
            .containers
            .iter()
            .filter(|(_, e)| e.status == ContainerStatus::Dead)
            .map(|(&id, _)| id)
            .collect();
        self.assignment.retain(|_, c| !dead.contains(c));
        // A dead standby is useless — drop the registration so the control
        // plane places a fresh one instead of promoting onto a corpse.
        self.standbys.retain(|_, c| !dead.contains(c));
        self.run_placement().moves
    }

    /// Manually relocate one shard to a specific alive container (operator
    /// or root-causer mitigation: "moving the task to another host usually
    /// resolves this class of problems", §V-D). Returns the movement to
    /// execute, or `None` if the shard/container is unknown, the target is
    /// dead, or the shard is already there.
    pub fn move_shard(&mut self, shard: ShardId, to: ContainerId) -> Option<ShardMovement> {
        if self.status(to) != Some(ContainerStatus::Alive) {
            return None;
        }
        if !self.shard_loads.contains_key(&shard) {
            return None;
        }
        let from = self.assignment.get(&shard).copied();
        if from == Some(to) {
            return None;
        }
        self.assignment.insert(shard, to);
        Some(ShardMovement { shard, from, to })
    }

    /// Run one load-balancing round: recompute placement from the latest
    /// shard loads and commit the new assignment. Returns the full
    /// placement result (moves carry `from` so the movement protocol can
    /// send `DROP_SHARD` before `ADD_SHARD`).
    pub fn rebalance(&mut self) -> PlacementResult {
        self.run_placement()
    }

    fn run_placement(&mut self) -> PlacementResult {
        self.shard_input.clear();
        self.shard_input
            .extend(self.shard_loads.iter().map(|(&s, &l)| (s, l)));
        self.container_input.clear();
        self.container_input.extend(
            self.containers
                .iter()
                .filter(|(_, e)| e.status == ContainerStatus::Alive)
                .map(|(&id, e)| (id, e.capacity)),
        );
        let result = compute_placement_with(
            &mut self.scratch,
            PlacementInput {
                shards: &self.shard_input,
                containers: &self.container_input,
                current: &self.assignment,
            },
            self.config.placement,
        );
        self.assignment = result.assignment.clone();
        result
    }
}

impl turbine_types::Snap for PlacementConfig {
    fn snap(&self, w: &mut turbine_types::SnapWriter) {
        w.put(&self.band);
        w.put(&self.headroom);
    }

    fn unsnap(r: &mut turbine_types::SnapReader<'_>) -> Result<Self, turbine_types::SnapError> {
        Ok(PlacementConfig {
            band: r.get()?,
            headroom: r.get()?,
        })
    }
}

impl turbine_types::Snap for ShardManagerConfig {
    fn snap(&self, w: &mut turbine_types::SnapWriter) {
        w.put(&self.failover_interval);
        w.put(&self.standby_grace);
        w.put(&self.placement);
    }

    fn unsnap(r: &mut turbine_types::SnapReader<'_>) -> Result<Self, turbine_types::SnapError> {
        Ok(ShardManagerConfig {
            failover_interval: r.get()?,
            standby_grace: r.get()?,
            placement: r.get()?,
        })
    }
}

impl turbine_types::Snap for ContainerStatus {
    fn snap(&self, w: &mut turbine_types::SnapWriter) {
        w.u8(match self {
            ContainerStatus::Alive => 0,
            ContainerStatus::Dead => 1,
        });
    }

    fn unsnap(r: &mut turbine_types::SnapReader<'_>) -> Result<Self, turbine_types::SnapError> {
        match r.u8("ContainerStatus.tag")? {
            0 => Ok(ContainerStatus::Alive),
            1 => Ok(ContainerStatus::Dead),
            tag => Err(turbine_types::SnapError::Tag("ContainerStatus", tag as u64)),
        }
    }
}

impl turbine_types::Snap for ContainerEntry {
    fn snap(&self, w: &mut turbine_types::SnapWriter) {
        w.put(&self.capacity);
        w.put(&self.last_heartbeat);
        w.put(&self.status);
    }

    fn unsnap(r: &mut turbine_types::SnapReader<'_>) -> Result<Self, turbine_types::SnapError> {
        Ok(ContainerEntry {
            capacity: r.get()?,
            last_heartbeat: r.get()?,
            status: r.get()?,
        })
    }
}

impl turbine_types::Snap for ShardManager {
    fn snap(&self, w: &mut turbine_types::SnapWriter) {
        w.put(&self.config);
        w.put(&self.shard_loads);
        w.put(&self.containers);
        // HashMap iteration order is arbitrary; sort through a BTreeMap so
        // equal assignments always serialize to equal bytes.
        let sorted: BTreeMap<ShardId, ContainerId> =
            self.assignment.iter().map(|(s, c)| (*s, *c)).collect();
        w.put(&sorted);
        w.put(&self.standbys);
        // Placement scratch and input buffers carry no state between
        // rounds; they are rebuilt empty on restore.
    }

    fn unsnap(r: &mut turbine_types::SnapReader<'_>) -> Result<Self, turbine_types::SnapError> {
        let config = r.get()?;
        let shard_loads = r.get()?;
        let containers = r.get()?;
        let sorted: BTreeMap<ShardId, ContainerId> = r.get()?;
        let standbys = r.get()?;
        Ok(ShardManager {
            config,
            shard_loads,
            containers,
            assignment: sorted.into_iter().collect(),
            standbys,
            scratch: PlacementScratch::default(),
            shard_input: Vec::new(),
            container_input: Vec::new(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::ZERO + Duration::from_secs(s)
    }

    fn manager_with(containers: u64, shards: u64) -> ShardManager {
        let mut mgr = ShardManager::new(ShardManagerConfig::default());
        mgr.ensure_shards(shards);
        for i in 0..containers {
            mgr.register_container(ContainerId(i), Resources::cpu_mem(32.0, 64_000.0), t(0));
        }
        for i in 0..shards {
            mgr.report_load(ShardId(i), Resources::cpu_mem(0.5, 512.0));
        }
        mgr
    }

    #[test]
    fn rebalance_assigns_all_shards() {
        let mut mgr = manager_with(4, 40);
        let result = mgr.rebalance();
        assert_eq!(result.assignment.len(), 40);
        assert_eq!(mgr.assignment().len(), 40);
        // Every container owns roughly its share.
        for i in 0..4 {
            let owned = mgr.shards_of(ContainerId(i)).len();
            assert!((5..=15).contains(&owned), "container {i} owns {owned}");
        }
    }

    #[test]
    fn heartbeat_keeps_containers_alive() {
        let mut mgr = manager_with(2, 10);
        mgr.rebalance();
        mgr.heartbeat(ContainerId(0), t(30));
        mgr.heartbeat(ContainerId(1), t(30));
        assert!(mgr.check_failover(t(59)).is_empty());
        assert_eq!(mgr.status(ContainerId(0)), Some(ContainerStatus::Alive));
    }

    #[test]
    fn silent_container_fails_over_after_interval() {
        let mut mgr = manager_with(3, 30);
        mgr.rebalance();
        let victim = ContainerId(0);
        let victim_shards = mgr.shards_of(victim);
        assert!(!victim_shards.is_empty());
        // Only the survivors heartbeat.
        for s in (10..70).step_by(10) {
            mgr.heartbeat(ContainerId(1), t(s));
            mgr.heartbeat(ContainerId(2), t(s));
        }
        let moves = mgr.check_failover(t(61));
        assert_eq!(mgr.status(victim), Some(ContainerStatus::Dead));
        // Every shard of the victim moved, none to the dead container.
        // Orphaned shards carry no source; any survivor-rebalancing move
        // must keep its live source (dropping it would leave the shard
        // owned twice).
        let moved: Vec<ShardId> = moves.iter().map(|m| m.shard).collect();
        for s in &victim_shards {
            assert!(moved.contains(s), "{s} must fail over");
        }
        for m in &moves {
            if victim_shards.contains(&m.shard) {
                assert_eq!(m.from, None, "{} had a dead source", m.shard);
            } else {
                assert!(m.from.is_some(), "{} moved from a live owner", m.shard);
                assert_ne!(m.from, Some(victim));
            }
        }
        assert!(moves.iter().all(|m| m.to != victim));
        // All shards remain assigned.
        assert_eq!(mgr.assignment().len(), 30);
    }

    #[test]
    fn failover_is_idempotent_until_new_deaths() {
        let mut mgr = manager_with(3, 12);
        mgr.rebalance();
        for s in [20u64, 40] {
            mgr.heartbeat(ContainerId(1), t(s));
            mgr.heartbeat(ContainerId(2), t(s));
        }
        let first = mgr.check_failover(t(65));
        assert!(!first.is_empty());
        // Nothing newly dead: second check is a no-op.
        let second = mgr.check_failover(t(70));
        assert!(second.is_empty());
    }

    #[test]
    fn returning_container_is_treated_as_empty() {
        let mut mgr = manager_with(2, 10);
        mgr.rebalance();
        // Container 0 goes silent and is failed over.
        for s in (10..70).step_by(10) {
            mgr.heartbeat(ContainerId(1), t(s));
        }
        mgr.check_failover(t(61));
        assert!(mgr.shards_of(ContainerId(0)).is_empty());
        // It reboots and reconnects: alive again, still empty.
        mgr.heartbeat(ContainerId(0), t(90));
        assert_eq!(mgr.status(ContainerId(0)), Some(ContainerStatus::Alive));
        assert!(mgr.shards_of(ContainerId(0)).is_empty());
        // While the survivor stays under the band threshold nothing moves
        // ("shards will be gradually added to such containers"): an
        // immediate rebalance at light load keeps the empty container idle.
        mgr.rebalance();
        // Once load grows and the survivor becomes hot, the next rebalance
        // spills shards onto the returned container.
        for i in 0..10 {
            mgr.report_load(ShardId(i), Resources::cpu_mem(2.5, 2048.0));
        }
        mgr.rebalance();
        assert!(!mgr.shards_of(ContainerId(0)).is_empty());
    }

    #[test]
    fn load_reports_shift_the_balance() {
        let mut mgr = manager_with(2, 8);
        mgr.rebalance();
        // Shards 0..4 become very heavy.
        for i in 0..4 {
            mgr.report_load(ShardId(i), Resources::cpu_mem(8.0, 8192.0));
        }
        let result = mgr.rebalance();
        // The heavy shards cannot all stay together: each container should
        // hold ~2 heavy shards.
        let heavy_on_0 = mgr
            .shards_of(ContainerId(0))
            .iter()
            .filter(|s| s.raw() < 4)
            .count();
        assert!(
            (1..=3).contains(&heavy_on_0),
            "heavy shards should spread, got {heavy_on_0} on container 0 (stats {:?})",
            result.stats
        );
    }

    #[test]
    fn unregistered_container_loses_its_shards_on_rebalance() {
        let mut mgr = manager_with(3, 12);
        mgr.rebalance();
        mgr.unregister_container(ContainerId(2));
        let result = mgr.rebalance();
        assert_eq!(result.assignment.len(), 12);
        assert!(result.assignment.values().all(|&c| c != ContainerId(2)));
    }

    #[test]
    fn heartbeat_reports_revival_of_dead_containers() {
        let mut mgr = manager_with(2, 10);
        mgr.rebalance();
        for s in (10..70).step_by(10) {
            assert!(!mgr.heartbeat(ContainerId(1), t(s)), "alive beat");
        }
        mgr.check_failover(t(61));
        assert_eq!(mgr.status(ContainerId(0)), Some(ContainerStatus::Dead));
        assert!(
            mgr.heartbeat(ContainerId(0), t(90)),
            "beat from a dead container is a revival"
        );
        assert!(!mgr.heartbeat(ContainerId(0), t(100)), "now ordinary");
        assert!(!mgr.heartbeat(ContainerId(99), t(100)), "unregistered");
    }

    #[test]
    fn suspect_precedes_death() {
        let mut mgr = manager_with(2, 10);
        mgr.rebalance();
        // Fresh beat at t=10, then silence.
        mgr.heartbeat(ContainerId(0), t(10));
        assert!(!mgr.is_suspect(ContainerId(0), t(20)));
        assert!(mgr.is_suspect(ContainerId(0), t(30)), "20 s of silence");
        // Still alive — standard fail-over has not fired yet.
        assert_eq!(mgr.status(ContainerId(0)), Some(ContainerStatus::Alive));
        // Once dead, a container is no longer merely suspect.
        mgr.check_failover(t(71));
        assert!(!mgr.is_suspect(ContainerId(0), t(72)));
    }

    #[test]
    fn promote_standby_hands_over_shards_and_consumes_registration() {
        let mut mgr = manager_with(3, 12);
        mgr.rebalance();
        let job = JobId(7);
        mgr.set_standby(job, ContainerId(2));
        assert_eq!(mgr.standby_of(job), Some(ContainerId(2)));
        let shards = mgr.shards_of(ContainerId(0));
        assert!(!shards.is_empty());
        let (to, moves) = mgr.promote_standby(job, &shards).expect("promotes");
        assert_eq!(to, ContainerId(2));
        assert_eq!(moves.len(), shards.len());
        for m in &moves {
            assert_eq!(m.to, ContainerId(2));
            assert_eq!(m.from, Some(ContainerId(0)), "source still owns");
        }
        for s in &shards {
            assert_eq!(mgr.container_of(*s), Some(ContainerId(2)));
        }
        // Registration consumed: a second promotion degrades.
        assert!(mgr.promote_standby(job, &shards).is_none());
    }

    #[test]
    fn dead_standby_is_dropped_not_promoted() {
        let mut mgr = manager_with(3, 12);
        mgr.rebalance();
        let job = JobId(1);
        mgr.set_standby(job, ContainerId(2));
        // Standby goes silent and dies.
        for s in (10..70).step_by(10) {
            mgr.heartbeat(ContainerId(0), t(s));
            mgr.heartbeat(ContainerId(1), t(s));
        }
        mgr.check_failover(t(61));
        assert_eq!(mgr.status(ContainerId(2)), Some(ContainerStatus::Dead));
        assert_eq!(mgr.standby_of(job), None, "fail-over dropped it");
        assert!(mgr.promote_standby(job, &[ShardId(0)]).is_none());
    }

    #[test]
    fn ensure_shards_is_monotone() {
        let mut mgr = ShardManager::new(ShardManagerConfig::default());
        mgr.ensure_shards(5);
        mgr.ensure_shards(3); // no shrink
        assert_eq!(mgr.shard_count(), 5);
        mgr.ensure_shards(8);
        assert_eq!(mgr.shard_count(), 8);
    }
}
