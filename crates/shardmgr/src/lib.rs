//! The Shard Manager (paper §IV), Facebook's generic shard-to-container
//! assignment service (cf. Google's Slicer), reimplemented in full.
//!
//! Turbine's two-level scheduling assigns *shards* to Turbine containers;
//! each local Task Manager then derives which tasks belong to its shards by
//! hashing. The Shard Manager:
//!
//! * bin-packs shards onto containers so every container's load stays
//!   within a utilization band (e.g. ±10 %) of the tier average while
//!   respecting per-container capacity and headroom (§IV-B);
//! * reshuffles assignments when refreshed shard loads arrive (every
//!   10 min) on a rebalance cadence (every 30 min for most tiers);
//! * drives the `DROP_SHARD`/`ADD_SHARD` movement protocol (§IV-A2);
//! * fails shards over from containers whose heartbeat stops for a full
//!   fail-over interval (60 s), pairing with the container-side proactive
//!   connection timeout (40 s) so lost connectivity cannot yield duplicate
//!   shards (§IV-C).

pub mod manager;
pub mod movement;
pub mod placement;

pub use manager::{ContainerStatus, ShardManager, ShardManagerConfig};
pub use movement::ShardMovement;
pub use placement::{compute_placement, PlacementConfig, PlacementInput, PlacementResult};
