//! A stateful aggregation job (paper §V-B, §V-E): memory is proportional
//! to the key cardinality held in memory, state must physically move when
//! parallelism changes, and the Plan Generator applies *correlated*
//! multi-resource adjustments — more tasks ⇒ less memory per task.
//!
//! ```sh
//! cargo run --release -p turbine-examples --bin stateful_aggregation
//! ```

use turbine::{Turbine, TurbineConfig};
use turbine_config::{ConfigValue, JobConfig};
use turbine_types::{Duration, JobId, Resources};
use turbine_workloads::TrafficModel;

fn main() {
    let mut config = TurbineConfig::default();
    config.syncer.max_inflight_rounds = 40;
    // Move state at 64 MB/s so the redistribution cost is visible.
    config.state_move_bandwidth = 64.0e6;
    let mut turbine = Turbine::new(config);
    turbine.add_hosts(6, Resources::new(56.0, 256.0 * 1024.0, 1.0e6, 1000.0));

    // An aggregation keeping 20M group-by keys in memory (~20 GB of
    // state), consuming 6 MB/s over 64 partitions with 4 tasks.
    let job = JobId(1);
    let mut jc = JobConfig::stateless("user_counters", 4, 64);
    jc.task_resources = Resources::cpu_mem(2.0, 8_192.0);
    jc.max_task_count = 64;
    turbine
        .provision_stateful_job(
            job,
            jc,
            TrafficModel::flat(6.0e6),
            1.0e6,
            512.0,
            2.0e7, // key cardinality
        )
        .expect("provision");
    turbine.run_for(Duration::from_mins(5));

    let show = |t: &mut Turbine, label: &str| {
        let cfg = t.job_service_mut().expected_typed(job).expect("config");
        let status = t.job_status(job).expect("status");
        println!(
            "{label:<42} tasks = {:>2}  mem/task = {:>6.0} MB  running = {:>2}  paused = {}",
            cfg.task_count, cfg.task_resources.memory_mb, status.running_tasks, status.paused
        );
    };
    show(&mut turbine, "steady state (4 tasks hold all 20M keys)");

    // The oncall doubles parallelism: state is redistributed (a real,
    // minutes-long move at 64 MB/s) before the new tasks start.
    turbine
        .oncall_set(job, "task_count", ConfigValue::Int(8))
        .expect("resize");
    let start = turbine.now();
    let mut paused_secs = 0u64;
    loop {
        turbine.run_for(Duration::from_secs(30));
        let status = turbine.job_status(job).expect("status");
        if status.paused {
            paused_secs += 30;
        }
        if status.running_tasks == 8 && !status.paused {
            break;
        }
        assert!(
            turbine.now().since(start) < Duration::from_mins(30),
            "resize must settle"
        );
    }
    println!(
        "\nresize 4 -> 8 took {} (paused ~{paused_secs}s while ~20 GB of state moved)",
        turbine.now().since(start)
    );
    show(&mut turbine, "after resize (each task holds half the keys)");

    // The correlated adjustment: with the key space split over twice the
    // tasks, the per-task memory estimate halves. Let the scaler reclaim.
    turbine.oncall_clear(job).expect("clear");
    turbine.run_for(Duration::from_hours(30));
    show(&mut turbine, "after the scaler's correlated reclaim");

    let backlog = turbine.job_status(job).expect("status").backlog_bytes;
    println!(
        "\nfinal backlog: {:.1} MB (SLO budget at 6 MB/s is 540 MB) — healthy = {}",
        backlog / 1.0e6,
        backlog < 6.0e6 * 90.0
    );
}
