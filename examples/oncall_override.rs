//! The hierarchical configuration model in action (paper §III-A):
//! Provisioner, Scaler, and Oncall levels layering over the Base config,
//! with oncall overrides winning regardless of what automation does, and
//! read-modify-write version checks preventing lost updates.
//!
//! ```sh
//! cargo run --release -p turbine-examples --bin oncall_override
//! ```

use turbine::{Turbine, TurbineConfig};
use turbine_config::{ConfigLevel, ConfigValue, JobConfig};
use turbine_types::{Duration, JobId, Resources};
use turbine_workloads::TrafficModel;

fn main() {
    let mut turbine = Turbine::new(TurbineConfig::default());
    turbine.add_hosts(4, Resources::new(56.0, 256.0 * 1024.0, 1.0e6, 1000.0));

    let job = JobId(1);
    turbine
        .provision_job(
            job,
            JobConfig::stateless("layered", 4, 64),
            TrafficModel::flat(2.0e6),
            1.0e6,
            256.0,
        )
        .expect("provision");
    turbine.run_for(Duration::from_mins(3));

    let show = |turbine: &mut Turbine, label: &str| {
        let cfg = turbine
            .job_service_mut()
            .expected_typed(job)
            .expect("typed config");
        println!("{label:<46} task_count = {:>3}", cfg.task_count);
    };

    show(&mut turbine, "base only");

    // The Auto Scaler writes its level (as automation would).
    turbine
        .job_service_mut()
        .set_level_field(job, ConfigLevel::Scaler, "task_count", ConfigValue::Int(15))
        .expect("scaler write");
    show(&mut turbine, "scaler asks for 15");

    // Oncall pins 30 during an incident: highest precedence wins.
    turbine
        .oncall_set(job, "task_count", ConfigValue::Int(30))
        .expect("oncall write");
    show(&mut turbine, "oncall pins 30 (beats scaler)");

    // A (broken) automation keeps writing — oncall still wins.
    turbine
        .job_service_mut()
        .set_level_field(job, ConfigLevel::Scaler, "task_count", ConfigValue::Int(5))
        .expect("scaler write");
    show(&mut turbine, "broken scaler writes 5 (oncall still wins)");

    // Incident over: the override is cleared and the scaler level shows
    // through again.
    turbine.oncall_clear(job).expect("clear oncall");
    show(&mut turbine, "oncall cleared (scaler value resumes)");

    // Let the State Syncer converge the running state to the expected one
    // and show the complex sync completing.
    turbine.run_for(Duration::from_mins(8));
    let status = turbine.job_status(job).expect("status");
    println!();
    println!(
        "after sync: {} tasks running (running config = {})",
        status.running_tasks, status.running_config_tasks
    );
}
