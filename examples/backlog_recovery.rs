//! Backlog recovery (paper §VI-B1, Fig. 8): a tailer job is disabled for
//! days by an application problem; when re-enabled, the Auto Scaler sizes
//! it to chew through the accumulated backlog — first to the default
//! 32-task cap, then to 128 after the operator lifts the cap at the
//! Oncall level.
//!
//! ```sh
//! cargo run --release -p turbine-examples --bin backlog_recovery
//! ```

use turbine::{Turbine, TurbineConfig};
use turbine_config::{ConfigValue, JobConfig};
use turbine_types::{Duration, JobId, Resources, SimTime};
use turbine_workloads::{TrafficEvent, TrafficEventKind, TrafficModel};

fn main() {
    let mut config = TurbineConfig::default();
    config.scaler.downscale_stability = Duration::from_hours(6);
    // Scuba tailers are single-threaded: the scaler can only add tasks,
    // so the default 32-task cap genuinely limits recovery speed.
    config.scaler.vertical_limit.cpu = 1.0;
    let mut turbine = Turbine::new(config);
    turbine.add_hosts(24, Resources::new(56.0, 256.0 * 1024.0, 1.0e6, 1000.0));

    // The application is broken from hour 2 to hour 50 (2 days): input
    // keeps arriving at 8 MB/s but nothing is consumed.
    let job = JobId(1);
    let outage = TrafficEvent {
        start: SimTime::ZERO + Duration::from_hours(2),
        end: SimTime::ZERO + Duration::from_hours(50),
        kind: TrafficEventKind::ConsumerDisabled,
    };
    let mut jc = JobConfig::stateless("backlogged_tailer", 8, 256);
    jc.max_task_count = 32; // the default cap for unprivileged tailers
    turbine
        .provision_job(
            job,
            jc,
            TrafficModel::flat(8.0e6).with_event(outage),
            1.0e6,
            256.0,
        )
        .expect("provision");
    turbine.metrics.watch_job(job);

    println!("hour  tasks  backlog_gb");
    let mut lifted = false;
    for hour in 1..=120u64 {
        turbine.run_for(Duration::from_hours(1));
        let status = turbine.job_status(job).expect("status");
        if hour % 4 == 0 || (50..56).contains(&hour) {
            println!(
                "{hour:>4}  {:>5}  {:>10.2}",
                status.running_tasks,
                status.backlog_bytes / 1.0e9
            );
        }
        // Six hours after recovery begins, the operator notices the job
        // pinned at the 32-task cap and lifts it (Fig. 8's cap removal).
        if !lifted && hour >= 56 {
            turbine
                .oncall_set(job, "max_task_count", ConfigValue::Int(128))
                .expect("lift cap");
            lifted = true;
            println!("      -- oncall lifts max_task_count to 128 --");
        }
        if lifted && status.backlog_bytes < 8.0e6 * 90.0 {
            println!("      -- backlog drained at hour {hour} --");
            break;
        }
    }

    let status = turbine.job_status(job).expect("status");
    println!();
    println!(
        "final: {} tasks, {:.2} GB backlog, {} scaling actions",
        status.running_tasks,
        status.backlog_bytes / 1.0e9,
        turbine.metrics.scaling_actions.get(),
    );
}
