//! Quickstart: provision one streaming job on a small cluster, let the
//! platform schedule it, and watch it process in real (simulated) time.
//!
//! ```sh
//! cargo run --release -p turbine-examples --bin quickstart
//! ```

use turbine::{Turbine, TurbineConfig};
use turbine_config::JobConfig;
use turbine_types::{Duration, JobId, Resources};
use turbine_workloads::TrafficModel;

fn main() {
    // A four-host cluster: 56 cores / 256 GB per machine, like the Scuba
    // Tailer fleet in the paper.
    let mut turbine = Turbine::new(TurbineConfig::default());
    turbine.add_hosts(4, Resources::new(56.0, 256.0 * 1024.0, 1.0e6, 1000.0));

    // One stateless tailer job: 4 tasks over 16 input partitions,
    // consuming a steady 3 MB/s with a 90-second lag SLO.
    let job = JobId(1);
    turbine
        .provision_job(
            job,
            JobConfig::stateless("quickstart_tailer", 4, 16),
            TrafficModel::flat(3.0e6),
            1.0e6, // each worker thread sustains 1 MB/s
            256.0, // average message size in bytes
        )
        .expect("provision");
    turbine.metrics.watch_job(job);

    println!("minute  running_tasks  backlog_mb  lag_s");
    for minute in 1..=15u64 {
        turbine.run_for(Duration::from_mins(1));
        let status = turbine.job_status(job).expect("job exists");
        let lag = status.backlog_bytes / 3.0e6;
        println!(
            "{minute:>6}  {:>13}  {:>10.1}  {lag:>5.1}",
            status.running_tasks,
            status.backlog_bytes / 1.0e6,
        );
    }

    let status = turbine.job_status(job).expect("job exists");
    println!();
    println!(
        "after 15 minutes: {} tasks running, {:.1} MB backlog, SLO ok = {}",
        status.running_tasks,
        status.backlog_bytes / 1.0e6,
        turbine.metrics.slo_ok_fraction.last() == Some(1.0),
    );
    println!(
        "lifecycle: {} task starts, {} shard moves, {} scaling actions",
        turbine.metrics.task_starts.get(),
        turbine.metrics.shard_moves.get(),
        turbine.metrics.scaling_actions.get(),
    );
}
