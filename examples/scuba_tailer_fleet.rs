//! A miniature Scuba Tailer service (paper §VI): a fleet of tailer jobs
//! with Fig. 5-like heavy-tailed footprints, running under load balancing
//! for a few simulated hours. Prints the host utilization band and the
//! tasks-per-host spread that Fig. 6 reports at cluster scale.
//!
//! ```sh
//! cargo run --release -p turbine-examples --bin scuba_tailer_fleet
//! ```

use turbine::{Turbine, TurbineConfig};
use turbine_config::JobConfig;
use turbine_types::{Duration, JobId, Resources};
use turbine_workloads::{synthesize_fleet, FleetConfig};

fn main() {
    let mut turbine = Turbine::new(TurbineConfig::default());
    turbine.add_hosts(16, Resources::new(56.0, 256.0 * 1024.0, 1.0e6, 1000.0));

    // 150 tailer jobs with heavy-tailed traffic, like the production fleet.
    let fleet = synthesize_fleet(&FleetConfig {
        jobs: 150,
        seed: 7,
        ..FleetConfig::default()
    });
    for (i, job) in fleet.iter().enumerate() {
        let mut config =
            JobConfig::stateless(&job.name, job.initial_task_count, job.input_partitions);
        config.task_resources = job.expected_task_usage.scale(1.3); // headroom
        config.task_resources.cpu = config.task_resources.cpu.max(0.25);
        turbine
            .provision_job(
                JobId(i as u64 + 1),
                config,
                job.traffic.clone(),
                1.0e6,
                job.avg_message_bytes,
            )
            .expect("provision");
    }

    println!("hour  cpu_p5  cpu_p50  cpu_p95  slo_ok");
    for hour in 1..=6u64 {
        turbine.run_for(Duration::from_hours(1));
        let m = &turbine.metrics;
        println!(
            "{hour:>4}  {:>6.3}  {:>7.3}  {:>7.3}  {:>6.3}",
            m.host_cpu.p5.last().unwrap_or(0.0),
            m.host_cpu.p50.last().unwrap_or(0.0),
            m.host_cpu.p95.last().unwrap_or(0.0),
            m.slo_ok_fraction.last().unwrap_or(0.0),
        );
    }

    // Tasks-per-host spread (Fig. 6c shape: a tight range, because load —
    // not task count — is what gets balanced).
    let mut per_container: std::collections::HashMap<_, usize> = std::collections::HashMap::new();
    for c in turbine.cluster.healthy_containers() {
        per_container.insert(c, 0);
    }
    // Count tasks per container via the shard ownership of each manager.
    let total_tasks = turbine.metrics.task_count.last().unwrap_or(0.0);
    println!();
    println!(
        "fleet: {} jobs, {:.0} running tasks across {} hosts",
        150,
        total_tasks,
        turbine.cluster.host_count()
    );
    println!(
        "lifecycle: {} task starts, {} shard moves, {} scaling actions, {} alerts",
        turbine.metrics.task_starts.get(),
        turbine.metrics.shard_moves.get(),
        turbine.metrics.scaling_actions.get(),
        turbine.metrics.alerts.get(),
    );
}
