//! A disaster-recovery drill ("storm", paper §VI-B2): a datacenter is
//! drained and its traffic redirected here, raising input ~16 % above the
//! normal peak. The Auto Scaler absorbs it — vertically first, so the task
//! count grows by less than the traffic does. Day 0 warms the fleet up,
//! day 1 is the baseline, the storm hits day 2 (08:00–20:00).
//!
//! ```sh
//! cargo run --release -p turbine-examples --bin storm_drill
//! ```

use turbine::{Turbine, TurbineConfig};
use turbine_config::JobConfig;
use turbine_types::{Duration, JobId, Resources, SimTime};
use turbine_workloads::{TrafficEvent, TrafficEventKind, TrafficModel};

fn main() {
    let mut config = TurbineConfig::default();
    config.scaler.downscale_stability = Duration::from_hours(4);
    // Keep tasks fine-grained (≤2 cores) so the storm pushes some jobs
    // past their vertical ceiling into horizontal scaling.
    config.scaler.vertical_limit.cpu = 2.0;
    // Preactive churn suppression: with a full-day lookahead the nightly
    // downscale sees tomorrow's peak in the history and holds capacity,
    // so the storm only adds the delta above the retained peak (the
    // paper's "+16% traffic -> +8% tasks" effect). Run the fleet warm
    // (hotter target utilization) so the storm actually crosses the
    // pre-emptive trigger.
    config.scaler.patterns.lookahead = Duration::from_hours(24);
    config.scaler.patterns.min_history_days = 1;
    config.scaler.preemptive_units = 0.95;
    config.scaler.target_units = 0.85;
    let mut turbine = Turbine::new(config);
    turbine.add_hosts(30, Resources::new(56.0, 256.0 * 1024.0, 1.0e6, 1000.0));

    // 40 diurnal jobs of heterogeneous sizes. Day 0 warms the fleet up
    // (cold-start sizing would pollute the baseline); day 1 is the
    // baseline; the storm redirect hits day 2, 08:00-20:00, ramping to
    // +16% traffic over two hours.
    let storm = TrafficEvent {
        start: SimTime::ZERO + Duration::from_hours(48 + 8),
        end: SimTime::ZERO + Duration::from_hours(48 + 20),
        kind: TrafficEventKind::RampedMultiplier {
            peak: 1.16,
            ramp_mins: 120,
        },
    };
    for i in 0..40u64 {
        let base = 4.0e6 * (1.0 + (i % 7) as f64);
        let traffic = TrafficModel::diurnal(base, 0.3, i).with_event(storm);
        let mut jc = JobConfig::stateless(&format!("pipeline_{i}"), 4, 256);
        jc.max_task_count = 256;
        turbine
            .provision_job(JobId(i + 1), jc, traffic, 1.0e6, 256.0)
            .expect("provision");
    }

    println!("hour  traffic_mb_s  tasks  slo_ok");
    let mut day1_peak_tasks = 0.0f64;
    let mut day2_peak_tasks = 0.0f64;
    let mut day1_peak_traffic = 0.0f64;
    let mut day2_peak_traffic = 0.0f64;
    for hour in 1..=68u64 {
        turbine.run_for(Duration::from_hours(1));
        let traffic = turbine.metrics.cluster_traffic.last().unwrap_or(0.0) / 1.0e6;
        let tasks = turbine.metrics.task_count.last().unwrap_or(0.0);
        if (34..48).contains(&hour) {
            day1_peak_tasks = day1_peak_tasks.max(tasks);
            day1_peak_traffic = day1_peak_traffic.max(traffic);
        }
        if (56..68).contains(&hour) {
            day2_peak_tasks = day2_peak_tasks.max(tasks);
            day2_peak_traffic = day2_peak_traffic.max(traffic);
        }
        if hour > 24 {
            println!(
                "{hour:>4}  {traffic:>12.1}  {tasks:>5.0}  {:>6.3}",
                turbine.metrics.slo_ok_fraction.last().unwrap_or(0.0)
            );
        }
    }

    println!();
    println!("day-1 peak: {day1_peak_traffic:.1} MB/s with {day1_peak_tasks:.0} tasks");
    println!("day-2 (storm) peak: {day2_peak_traffic:.1} MB/s with {day2_peak_tasks:.0} tasks");
    println!(
        "traffic grew {:.1}% at peak; task count grew {:.1}% — vertical-first \
         scaling and headroom absorb most of the storm (paper: +16% traffic, +8% tasks)",
        (day2_peak_traffic / day1_peak_traffic - 1.0) * 100.0,
        (day2_peak_tasks / day1_peak_tasks.max(1.0) - 1.0) * 100.0,
    );
}
